"""Serve-layer store contracts: off-loop I/O and single-flight coalescing.

Two regressions are pinned here.  First, a cache hit must never do file
I/O (open/read/``json.loads``) on the asyncio event-loop thread — every
store call runs through the backend's auxiliary I/O lane.  Second,
concurrent identical requests collapse onto one evaluation: 64 copies of
the same spec produce exactly one evaluator call and 64 bitwise-identical
responses, and a leader's failure propagates to every follower instead of
leaving them hanging.
"""

import asyncio
import threading

import pytest

from repro import NODE_100NM, units
from repro.engine.jobs import DelayJob, canonical_json
from repro.engine.store import MemoryStore
from repro.serve.protocol import EvaluationFailedError, ServeRequest
from repro.serve.service import ReproService

NH = units.NH_PER_MM


def delay_job(l_nh=1.0):
    return DelayJob(line=NODE_100NM.line_with_inductance(l_nh * NH),
                    driver=NODE_100NM.driver, h=0.01, k=150.0)


class ProbeStore(MemoryStore):
    """Memory store recording which thread performs each get/put."""

    def __init__(self):
        super().__init__()
        self.get_threads = []
        self.put_threads = []

    def get(self, job):
        self.get_threads.append(threading.get_ident())
        return super().get(job)

    def put(self, job, result):
        self.put_threads.append(threading.get_ident())
        return super().put(job, result)


class TestOffLoopStoreIO:
    def test_cache_hit_never_reads_on_the_loop_thread(self):
        """The regression: a hit used to open/read/decode the record
        directly in the submit coroutine, blocking the event loop."""
        job = delay_job()
        store = ProbeStore()
        MemoryStore.put(store, job, job.run())  # seed without recording
        service = ReproService(cache=store)     # thread backend (default)
        loop_thread = {}

        async def run():
            loop_thread["ident"] = threading.get_ident()
            try:
                return await service.submit(ServeRequest(job=job))
            finally:
                await service.close()

        response = asyncio.run(run())
        assert response["cache"] == "hit"
        assert store.get_threads, "the store was never consulted"
        assert loop_thread["ident"] not in store.get_threads
        assert service.backend.stats_payload()["io_calls"] >= 1

    def test_cache_put_runs_off_the_loop_thread_too(self):
        job = delay_job()
        store = ProbeStore()
        service = ReproService(cache=store, max_linger=0.0)
        loop_thread = {}

        async def run():
            loop_thread["ident"] = threading.get_ident()
            try:
                return await service.submit(ServeRequest(job=job))
            finally:
                await service.close()

        response = asyncio.run(run())
        assert response["cache"] == "miss"
        assert store.put_threads
        assert loop_thread["ident"] not in store.put_threads

    def test_serial_backend_stays_inline_by_design(self):
        job = delay_job()
        store = ProbeStore()
        MemoryStore.put(store, job, job.run())
        service = ReproService(cache=store, backend="serial")

        async def run():
            try:
                return await service.submit(ServeRequest(job=job))
            finally:
                await service.close()

        response = asyncio.run(run())
        assert response["cache"] == "hit"
        assert service.backend.stats_payload()["io_calls"] >= 1


class TestSingleFlightCoalescing:
    def _counting_evaluator(self, calls, lanes):
        def evaluate(jobs):
            calls.append(len(jobs))
            lanes.extend(jobs)
            return [{"ok": True, "result": {"tau": 1.0}} for _ in jobs]
        return evaluate

    def test_64_identical_requests_one_evaluation(self):
        """The acceptance check: 64 concurrent copies of one spec ->
        exactly one evaluation, 64 bitwise-identical responses."""
        calls, lanes = [], []
        service = ReproService(
            cache=None, max_linger=0.0,
            evaluators={"delay": self._counting_evaluator(calls, lanes)})
        job = delay_job()

        async def run():
            try:
                return await asyncio.gather(
                    *(service.submit(ServeRequest(job=job))
                      for _ in range(64)))
            finally:
                await service.close()

        responses = asyncio.run(run())
        assert len(lanes) == 1          # one lane ever evaluated
        assert sum(calls) == 1
        assert len(responses) == 64
        first = responses[0]
        assert first["ok"] and first["result"] == {"tau": 1.0}
        # Followers receive the leader's exact response body.
        assert all(response is first for response in responses[1:])
        assert canonical_json(first) == canonical_json(responses[63])
        assert service.metrics.coalesced["delay"] == 63
        assert "63 coalesced" in service.metrics.format_summary()
        assert service.metrics.to_payload()["coalesced"] == {"delay": 63}

    def test_distinct_specs_are_not_coalesced(self):
        calls, lanes = [], []
        service = ReproService(
            cache=None, max_linger=0.2,
            evaluators={"delay": self._counting_evaluator(calls, lanes)})
        jobs = [delay_job(l_nh) for l_nh in (0.5, 1.0, 1.5)]

        async def run():
            try:
                return await asyncio.gather(
                    *(service.submit(ServeRequest(job=job))
                      for job in jobs))
            finally:
                await service.close()

        responses = asyncio.run(run())
        assert len(lanes) == 3
        assert all(response["ok"] for response in responses)
        assert service.metrics.coalesced == {}

    def test_no_cache_requests_bypass_coalescing(self):
        """A ``no_cache`` request asked for its own fresh evaluation."""
        calls, lanes = [], []
        service = ReproService(
            cache=None, max_linger=0.2,
            evaluators={"delay": self._counting_evaluator(calls, lanes)})
        job = delay_job()

        async def run():
            try:
                return await asyncio.gather(
                    *(service.submit(ServeRequest(job=job, no_cache=True))
                      for _ in range(4)))
            finally:
                await service.close()

        responses = asyncio.run(run())
        assert len(lanes) == 4          # every request evaluated itself
        assert all(response["ok"] for response in responses)
        assert service.metrics.coalesced == {}

    def test_leader_failure_propagates_to_every_follower(self):
        def explode(jobs):
            return [{"ok": False, "error": "kernel rejected the batch",
                     "error_type": "DelaySolverError"} for _ in jobs]

        service = ReproService(cache=None, max_linger=0.0,
                               evaluators={"delay": explode})
        job = delay_job()

        async def run():
            try:
                return await asyncio.gather(
                    *(service.submit(ServeRequest(job=job))
                      for _ in range(8)),
                    return_exceptions=True)
            finally:
                await service.close()

        results = asyncio.run(run())
        assert len(results) == 8
        for result in results:
            assert isinstance(result, EvaluationFailedError)
            assert "kernel rejected the batch" in result.message
        # Nobody hung, and every follower was recorded as an outcome.
        recorded = sum(count for (kind, _code), count in
                       service.metrics.outcomes.items())
        assert recorded == 8

    def test_flight_clears_after_completion(self):
        """Coalescing dedupes concurrency, it is not a cache: a request
        arriving after the flight resolves evaluates afresh."""
        calls, lanes = [], []
        service = ReproService(
            cache=None, max_linger=0.0,
            evaluators={"delay": self._counting_evaluator(calls, lanes)})
        job = delay_job()

        async def run():
            try:
                first = await service.submit(ServeRequest(job=job))
                second = await service.submit(ServeRequest(job=job))
                return first, second
            finally:
                await service.close()

        first, second = asyncio.run(run())
        assert len(lanes) == 2
        assert first["ok"] and second["ok"]
        assert service.metrics.coalesced == {}

    def test_coalesced_hit_after_cache_write_back(self):
        """Followers and cache compose: the leader's result lands in
        the store, so the next wave is a pure cache hit."""
        store = MemoryStore()
        calls, lanes = [], []
        service = ReproService(
            cache=store, max_linger=0.0,
            evaluators={"delay": self._counting_evaluator(calls, lanes)})
        job = delay_job()

        async def run():
            try:
                burst = await asyncio.gather(
                    *(service.submit(ServeRequest(job=job))
                      for _ in range(4)))
                later = await service.submit(ServeRequest(job=job))
                return burst, later
            finally:
                await service.close()

        burst, later = asyncio.run(run())
        assert len(lanes) == 1
        assert all(response["cache"] == "miss" or response is burst[0]
                   for response in burst)
        assert later["cache"] == "hit"
        assert later["result"] == {"tau": 1.0}


class TestFollowerDeadline:
    def test_follower_timeout_does_not_cancel_the_leader(self):
        """A follower with a tiny deadline times out with a structured
        error while the leader's evaluation completes unharmed."""
        from repro.serve.protocol import DeadlineExceededError

        release = threading.Event()

        def slow(jobs):
            release.wait(timeout=10.0)
            return [{"ok": True, "result": {"tau": 2.0}} for _ in jobs]

        service = ReproService(cache=None, max_linger=0.0,
                               evaluators={"delay": slow})
        job = delay_job()

        async def run():
            leader = asyncio.ensure_future(
                service.submit(ServeRequest(job=job)))
            await asyncio.sleep(0.05)   # leader registers its flight
            follower = asyncio.ensure_future(
                service.submit(ServeRequest(job=job, timeout=0.01)))
            follower_result = await asyncio.gather(
                follower, return_exceptions=True)
            release.set()
            leader_response = await leader
            await service.close()
            return leader_response, follower_result[0]

        leader_response, follower_outcome = asyncio.run(run())
        assert leader_response["ok"]
        assert leader_response["result"] == {"tau": 2.0}
        assert isinstance(follower_outcome, DeadlineExceededError)


if __name__ == "__main__":
    import sys
    sys.exit(pytest.main([__file__, "-q"]))
