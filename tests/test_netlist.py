"""Unit tests for the circuit netlist container."""

import pytest

from repro.circuits import (Capacitor, Circuit, GROUND, Inductor, Mosfet,
                            Resistor, VoltageSource)
from repro.circuits.waveforms import DC
from repro.errors import NetlistError, ParameterError


class TestElementConstruction:
    def test_resistor_requires_positive_value(self):
        with pytest.raises(ParameterError):
            Resistor(name="R1", a="1", b="0", resistance=0.0)

    def test_capacitor_requires_positive_value(self):
        with pytest.raises(ParameterError):
            Capacitor(name="C1", a="1", b="0", capacitance=-1e-12)

    def test_inductor_requires_positive_value(self):
        with pytest.raises(ParameterError):
            Inductor(name="L1", a="1", b="0", inductance=0.0)

    def test_voltage_source_requires_waveform(self):
        with pytest.raises(ParameterError):
            VoltageSource(name="V1", a="1", b="0")

    def test_branch_counts(self):
        assert Resistor(name="R", a="1", b="0",
                        resistance=1.0).branch_count == 0
        assert Inductor(name="L", a="1", b="0",
                        inductance=1e-9).branch_count == 1
        assert VoltageSource(name="V", a="1", b="0",
                             waveform=DC(1.0)).branch_count == 1


class TestCircuit:
    def test_add_and_lookup(self):
        circuit = Circuit("test")
        circuit.resistor("R1", "a", "b", 100.0)
        assert "R1" in circuit
        assert circuit.element("R1").resistance == 100.0
        assert len(circuit) == 1

    def test_duplicate_name_rejected(self):
        circuit = Circuit()
        circuit.resistor("R1", "a", "b", 100.0)
        with pytest.raises(NetlistError):
            circuit.resistor("R1", "b", "c", 200.0)

    def test_unknown_element_lookup(self):
        with pytest.raises(NetlistError):
            Circuit().element("nope")

    def test_nodes_exclude_ground(self):
        circuit = Circuit()
        circuit.resistor("R1", "a", GROUND, 100.0)
        circuit.resistor("R2", "a", "b", 100.0)
        assert circuit.nodes == ["a", "b"]

    def test_float_becomes_dc_source(self):
        circuit = Circuit()
        source = circuit.voltage_source("V1", "a", GROUND, 3.3)
        assert source.waveform(123.0) == 3.3
        circuit.resistor("R1", "a", GROUND, 1.0)  # keep netlist valid

    def test_elements_of_type(self):
        circuit = Circuit()
        circuit.resistor("R1", "a", GROUND, 1.0)
        circuit.capacitor("C1", "a", GROUND, 1e-12)
        circuit.resistor("R2", "a", GROUND, 2.0)
        resistors = circuit.elements_of_type(Resistor)
        assert [r.name for r in resistors] == ["R1", "R2"]

    def test_mosfet_counts_as_nonlinear(self):
        from repro.circuits import NonlinearDevice
        circuit = Circuit()
        circuit.add(Mosfet(name="M1", drain="d", gate="g", source=GROUND,
                           polarity=1, vth=0.3, beta=1e-4))
        assert len(circuit.elements_of_type(NonlinearDevice)) == 1

    def test_validate_flags_dangling_node(self):
        circuit = Circuit()
        circuit.resistor("R1", "a", "b", 100.0)
        circuit.resistor("R2", "a", GROUND, 100.0)
        with pytest.raises(NetlistError, match="dangling"):
            circuit.validate()

    def test_validate_accepts_closed_circuit(self):
        circuit = Circuit()
        circuit.voltage_source("V1", "a", GROUND, 1.0)
        circuit.resistor("R1", "a", "b", 100.0)
        circuit.capacitor("C1", "b", GROUND, 1e-12)
        circuit.validate()

    def test_validate_rejects_empty(self):
        with pytest.raises(NetlistError):
            Circuit().validate()

    def test_empty_node_name_rejected(self):
        circuit = Circuit()
        with pytest.raises(NetlistError):
            circuit.resistor("R1", "", "b", 100.0)

    def test_summary_counts(self):
        circuit = Circuit()
        circuit.voltage_source("V1", "a", GROUND, 1.0)
        circuit.resistor("R1", "a", "b", 100.0)
        circuit.inductor("L1", "b", "c", 1e-9)
        circuit.capacitor("C1", "c", GROUND, 1e-12)
        summary = circuit.summary()
        assert "1R" in summary and "1C" in summary and "1L" in summary
        assert "1V" in summary
