"""Unit tests for the AC (phasor) analysis engine."""

import math

import numpy as np
import pytest

from repro import Stage, exact_transfer, rc_optimum, units
from repro.circuits import Circuit, GROUND, Mosfet, build_linear_stage
from repro.circuits.ac import (AcAnalysis, ac_transfer, bode_magnitude_db,
                               find_bandwidth)
from repro.errors import SimulationError


def rc_lowpass(r=1000.0, c=1e-12):
    circuit = Circuit("rc-lowpass")
    circuit.voltage_source("VIN", "in", GROUND, 0.0)
    circuit.resistor("R1", "in", "out", r)
    circuit.capacitor("C1", "out", GROUND, c)
    return circuit


class TestBasics:
    def test_rc_lowpass_matches_analytic(self):
        r, c = 1000.0, 1e-12
        circuit = rc_lowpass(r, c)
        frequencies = [1e6, 1e8, 1.59e8, 1e10]
        h = ac_transfer(circuit, input_source="VIN", output_node="out",
                        frequencies=frequencies)
        for f, value in zip(frequencies, h):
            expected = 1.0 / (1.0 + 2j * math.pi * f * r * c)
            assert value == pytest.approx(expected, rel=1e-9)

    def test_dc_limit_is_unity(self):
        h = ac_transfer(rc_lowpass(), input_source="VIN",
                        output_node="out", frequencies=[1.0])
        assert abs(h[0]) == pytest.approx(1.0, rel=1e-9)

    def test_series_rlc_resonance(self):
        """Series RLC to ground: |V_C| peaks near 1/(2 pi sqrt(LC))."""
        r, l, c = 5.0, 1e-9, 1e-12
        circuit = Circuit("rlc")
        circuit.voltage_source("VIN", "in", GROUND, 0.0)
        circuit.resistor("R1", "in", "a", r)
        circuit.inductor("L1", "a", "b", l)
        circuit.capacitor("C1", "b", GROUND, c)
        f0 = 1.0 / (2.0 * math.pi * math.sqrt(l * c))
        frequencies = np.linspace(0.5 * f0, 1.5 * f0, 201)
        h = ac_transfer(circuit, input_source="VIN", output_node="b",
                        frequencies=frequencies)
        peak_f = frequencies[int(np.argmax(np.abs(h)))]
        assert peak_f == pytest.approx(f0, rel=0.02)
        q = math.sqrt(l / c) / r
        assert np.max(np.abs(h)) == pytest.approx(q, rel=0.05)

    def test_mutual_inductance_changes_response(self):
        """Coupling two series inductors shifts an LC resonance."""
        def resonance(k):
            circuit = Circuit("coupled")
            circuit.voltage_source("VIN", "in", GROUND, 0.0)
            circuit.resistor("R1", "in", "a", 5.0)
            circuit.inductor("L1", "a", "m", 1e-9)
            circuit.inductor("L2", "m", "b", 1e-9)
            if k:
                circuit.mutual("K1", "L1", "L2", k)
            circuit.capacitor("C1", "b", GROUND, 1e-12)
            f = np.linspace(1e9, 6e9, 400)
            h = ac_transfer(circuit, input_source="VIN", output_node="b",
                            frequencies=f)
            return f[int(np.argmax(np.abs(h)))]

        # Series aiding: L_eff = 2L(1+k) -> lower resonance.
        assert resonance(0.5) < resonance(0.0)

    def test_rejects_nonlinear_circuit(self):
        circuit = Circuit("nl")
        circuit.voltage_source("VIN", "g", GROUND, 0.0)
        circuit.voltage_source("VDD", "vdd", GROUND, 1.2)
        circuit.add(Mosfet(name="M1", drain="vdd", gate="g", source=GROUND,
                           polarity=1, vth=0.3, beta=1e-4))
        with pytest.raises(SimulationError, match="linear circuits only"):
            AcAnalysis(circuit, input_source="VIN")

    def test_rejects_unknown_source(self):
        with pytest.raises(SimulationError, match="not a voltage source"):
            AcAnalysis(rc_lowpass(), input_source="VZZ")


class TestInputImpedance:
    def test_resistor_input_impedance(self):
        circuit = Circuit("z")
        circuit.voltage_source("VIN", "in", GROUND, 0.0)
        circuit.resistor("R1", "in", GROUND, 123.0)
        analysis = AcAnalysis(circuit, input_source="VIN")
        z = analysis.input_impedance([1e9 * 2 * math.pi])
        assert z[0] == pytest.approx(123.0, rel=1e-9)

    def test_capacitor_input_impedance(self):
        circuit = Circuit("z")
        circuit.voltage_source("VIN", "in", GROUND, 0.0)
        circuit.capacitor("C1", "in", GROUND, 1e-12)
        circuit.resistor("Rbig", "in", GROUND, 1e12)  # keep netlist valid
        analysis = AcAnalysis(circuit, input_source="VIN")
        omega = 2 * math.pi * 1e9
        z = analysis.input_impedance([omega])
        expected = 1.0 / (1j * omega * 1e-12)
        assert z[0] == pytest.approx(expected, rel=1e-3)


class TestLadderVsExact:
    """Frequency-domain cross-validation: ladder H(jw) vs Eq. 1."""

    @pytest.mark.parametrize("l_nh", [0.0, 1.0, 3.0])
    def test_ladder_matches_exact_transfer(self, l_nh):
        from repro import NODE_100NM
        node = NODE_100NM
        rc = rc_optimum(node.line, node.driver)
        line = node.line_with_inductance(l_nh * units.NH_PER_MM)
        stage = Stage(line=line, driver=node.driver,
                      h=rc.h_opt, k=rc.k_opt)
        # 100 sections: the ladder's dispersion error at 10 GHz (segment
        # length ~ wavelength/10) drops below 4%; AC solves are cheap.
        bench = build_linear_stage(stage, segments=100)
        exact = exact_transfer(stage)
        # Frequencies up to ~2x the stage bandwidth.
        frequencies = [1e8, 1e9, 3e9, 1e10]
        measured = ac_transfer(bench.circuit, input_source="VSTEP",
                               output_node=bench.output_node,
                               frequencies=frequencies)
        for f, value in zip(frequencies, measured):
            reference = exact(2j * math.pi * f)
            assert value == pytest.approx(reference, rel=0.05)


class TestBandwidth:
    def test_rc_bandwidth(self):
        r, c = 1000.0, 1e-12
        f_3db = find_bandwidth(rc_lowpass(r, c), input_source="VIN",
                               output_node="out")
        assert f_3db == pytest.approx(1.0 / (2 * math.pi * r * c), rel=0.02)

    def test_bandwidth_not_found_raises(self):
        # A purely resistive divider never rolls off.
        circuit = Circuit("flat")
        circuit.voltage_source("VIN", "in", GROUND, 0.0)
        circuit.resistor("R1", "in", "out", 100.0)
        circuit.resistor("R2", "out", GROUND, 100.0)
        with pytest.raises(SimulationError):
            find_bandwidth(circuit, input_source="VIN", output_node="out",
                           f_stop=1e9)

    def test_bode_helper(self):
        values = bode_magnitude_db(np.array([1.0, 0.1]))
        assert values[0] == pytest.approx(0.0)
        assert values[1] == pytest.approx(-20.0)
