"""Unit tests for the dynamic micro-batcher (no kernel layer involved).

Every test drives a :class:`DynamicBatcher` with a scripted evaluator, so
the batching policy — coalescing, splitting, admission control, queue
deadlines, per-lane fault isolation, graceful drain — is exercised in
isolation from the numerical code.  The suite has no async test runner;
each test wraps its coroutine in ``asyncio.run``.
"""

import asyncio
import threading

import pytest

from repro.serve.batcher import DynamicBatcher
from repro.serve.protocol import (DeadlineExceededError,
                                  EvaluationFailedError, QueueFullError,
                                  ServiceClosedError)


class RecordingEvaluator:
    """Echo evaluator that records the batches it was handed."""

    def __init__(self, delay=0.0, gate=None):
        self.batches = []
        self.delay = delay
        self.gate = gate  # threading.Event the evaluator waits on

    def __call__(self, jobs):
        self.batches.append(list(jobs))
        if self.gate is not None:
            assert self.gate.wait(timeout=10.0)
        if self.delay:
            import time
            time.sleep(self.delay)
        return [{"ok": True, "result": {"echo": job}} for job in jobs]


class TestCoalescing:
    def test_concurrent_burst_becomes_one_batch(self):
        evaluate = RecordingEvaluator()

        async def run():
            batcher = DynamicBatcher("echo", evaluate, max_batch_size=64,
                                     max_linger=0.2)
            results = await asyncio.gather(
                *(batcher.submit(i) for i in range(8)))
            await batcher.close()
            return results

        results = asyncio.run(run())
        assert evaluate.batches == [list(range(8))]
        assert [result for result, _size in results] \
            == [{"echo": i} for i in range(8)]
        assert all(size == 8 for _result, size in results)

    def test_max_batch_size_splits_the_queue(self):
        evaluate = RecordingEvaluator()

        async def run():
            batcher = DynamicBatcher("echo", evaluate, max_batch_size=4,
                                     max_linger=0.2)
            results = await asyncio.gather(
                *(batcher.submit(i) for i in range(10)))
            await batcher.close()
            return results

        results = asyncio.run(run())
        assert [len(batch) for batch in evaluate.batches] == [4, 4, 2]
        assert sorted(job for batch in evaluate.batches for job in batch) \
            == list(range(10))
        assert [result for result, _size in results] \
            == [{"echo": i} for i in range(10)]

    def test_linger_expiry_dispatches_partial_batch(self):
        evaluate = RecordingEvaluator()

        async def run():
            batcher = DynamicBatcher("echo", evaluate, max_batch_size=64,
                                     max_linger=0.01)
            result, size = await batcher.submit("alone")
            await batcher.close()
            return result, size

        result, size = asyncio.run(run())
        assert result == {"echo": "alone"}
        assert size == 1

    def test_rejects_bad_policy(self):
        with pytest.raises(ValueError):
            DynamicBatcher("echo", RecordingEvaluator(), max_batch_size=0)
        with pytest.raises(ValueError):
            DynamicBatcher("echo", RecordingEvaluator(), max_linger=-1.0)
        with pytest.raises(ValueError):
            DynamicBatcher("echo", RecordingEvaluator(), max_queue_depth=0)


class TestFaultIsolation:
    def test_failed_lane_fails_alone(self):
        def evaluate(jobs):
            return [{"ok": False, "error": f"lane {job} diverged",
                     "error_type": "OptimizationError"}
                    if job == "bad" else {"ok": True, "result": {"echo": job}}
                    for job in jobs]

        async def run():
            batcher = DynamicBatcher("echo", evaluate, max_linger=0.2)
            outcomes = await asyncio.gather(
                batcher.submit("a"), batcher.submit("bad"),
                batcher.submit("b"), return_exceptions=True)
            await batcher.close()
            return outcomes

        good_a, bad, good_b = asyncio.run(run())
        assert good_a[0] == {"echo": "a"}
        assert good_b[0] == {"echo": "b"}
        assert isinstance(bad, EvaluationFailedError)
        assert "diverged" in bad.message
        assert bad.details == {"error_type": "OptimizationError"}

    def test_evaluator_crash_fails_only_its_batch(self):
        calls = []

        def evaluate(jobs):
            calls.append(list(jobs))
            if len(calls) == 1:
                raise RuntimeError("kernel refused the batch")
            return [{"ok": True, "result": {"echo": job}} for job in jobs]

        async def run():
            batcher = DynamicBatcher("echo", evaluate, max_linger=0.05)
            first = await asyncio.gather(
                batcher.submit("x"), batcher.submit("y"),
                return_exceptions=True)
            # The drain loop survives the crash: later work still runs.
            second = await batcher.submit("z")
            await batcher.close()
            return first, second

        first, second = asyncio.run(run())
        assert all(isinstance(exc, EvaluationFailedError) for exc in first)
        assert all("kernel refused" in exc.message for exc in first)
        assert second[0] == {"echo": "z"}
        assert len(calls) == 2

    def test_envelope_count_mismatch_is_an_evaluation_failure(self):
        def evaluate(jobs):
            return [{"ok": True, "result": {}}] * (len(jobs) + 1)

        async def run():
            batcher = DynamicBatcher("echo", evaluate, max_linger=0.01)
            with pytest.raises(EvaluationFailedError,
                               match="3 envelopes for 2 jobs"):
                await asyncio.gather(batcher.submit("a"),
                                     batcher.submit("b"))
            await batcher.close()

        asyncio.run(run())


class TestAdmissionControl:
    def test_queue_full_rejects_immediately(self):
        gate = threading.Event()
        evaluate = RecordingEvaluator(gate=gate)

        async def run():
            batcher = DynamicBatcher("echo", evaluate, max_batch_size=1,
                                     max_linger=0.0, max_queue_depth=2)
            # First submission dispatches and pins the evaluator thread.
            first = asyncio.ensure_future(batcher.submit("dispatched"))
            while not evaluate.batches:
                await asyncio.sleep(0.001)
            # Two more fill the queue to max_queue_depth.
            queued = [asyncio.ensure_future(batcher.submit(i))
                      for i in range(2)]
            await asyncio.sleep(0.01)
            assert batcher.queue_depth == 2
            with pytest.raises(QueueFullError, match="queue is full"):
                await batcher.submit("rejected")
            gate.set()
            results = await asyncio.gather(first, *queued)
            await batcher.close()
            return results

        results = asyncio.run(run())
        # The rejection lost no admitted request.
        assert [result for result, _size in results] \
            == [{"echo": "dispatched"}, {"echo": 0}, {"echo": 1}]

    def test_deadline_expires_in_queue(self):
        gate = threading.Event()
        released = []

        def evaluate(jobs):
            if not released:
                released.append(True)
                assert gate.wait(timeout=10.0)
            return [{"ok": True, "result": {"echo": job}} for job in jobs]

        async def run():
            batcher = DynamicBatcher("echo", evaluate, max_batch_size=1,
                                     max_linger=0.0)
            first = asyncio.ensure_future(batcher.submit("slow"))
            while not released:
                await asyncio.sleep(0.001)
            # Queued behind the stalled batch with a tiny deadline.
            doomed = asyncio.ensure_future(
                batcher.submit("doomed", timeout=0.01))
            await asyncio.sleep(0.05)
            gate.set()
            outcomes = await asyncio.gather(first, doomed,
                                            return_exceptions=True)
            await batcher.close()
            return outcomes

        slow, doomed = asyncio.run(run())
        assert slow[0] == {"echo": "slow"}
        assert isinstance(doomed, DeadlineExceededError)
        assert "expired" in doomed.message

    def test_expired_lane_never_reaches_the_evaluator(self):
        gate = threading.Event()
        evaluate = RecordingEvaluator(gate=gate)

        async def run():
            batcher = DynamicBatcher("echo", evaluate, max_batch_size=1,
                                     max_linger=0.0)
            first = asyncio.ensure_future(batcher.submit("pin"))
            while not evaluate.batches:
                await asyncio.sleep(0.001)
            doomed = asyncio.ensure_future(
                batcher.submit("doomed", timeout=0.01))
            await asyncio.sleep(0.05)
            gate.set()
            await asyncio.gather(first, doomed, return_exceptions=True)
            await batcher.close()

        asyncio.run(run())
        assert ["doomed"] not in evaluate.batches


class TestGracefulDrain:
    def test_close_flushes_every_admitted_lane(self):
        evaluate = RecordingEvaluator()

        async def run():
            # Linger far longer than the test: only close() can flush.
            batcher = DynamicBatcher("echo", evaluate, max_batch_size=64,
                                     max_linger=30.0)
            waiters = [asyncio.ensure_future(batcher.submit(i))
                       for i in range(3)]
            await asyncio.sleep(0.01)
            assert not any(w.done() for w in waiters)  # still lingering
            await batcher.close()
            return await asyncio.gather(*waiters)

        results = asyncio.run(run())
        assert [result for result, _size in results] \
            == [{"echo": i} for i in range(3)]

    def test_submit_after_close_is_refused(self):
        async def run():
            batcher = DynamicBatcher("echo", RecordingEvaluator(),
                                     max_linger=0.0)
            await batcher.close()
            assert batcher.closed
            with pytest.raises(ServiceClosedError, match="draining"):
                await batcher.submit("late")
            await batcher.close()  # idempotent

        asyncio.run(run())

    def test_on_batch_hook_sees_dispatched_sizes(self):
        sizes = []

        async def run():
            batcher = DynamicBatcher(
                "echo", RecordingEvaluator(), max_batch_size=2,
                max_linger=0.2, on_batch=lambda kind, n: sizes.append((kind, n)))
            await asyncio.gather(*(batcher.submit(i) for i in range(4)))
            await batcher.close()

        asyncio.run(run())
        assert sizes == [("echo", 2), ("echo", 2)]


class TestDrainRobustness:
    """Regressions for the close/linger race and the advisory hook.

    Both bugs shared a failure shape: the drain task died (or exited
    with lanes still queued) and every orphaned waiter hung forever.
    The invariant under test is answered-or-rejected — a lane may fail,
    but it may never be silently dropped.
    """

    def test_raising_on_batch_hook_does_not_orphan_lanes(self):
        # A metrics hook that raises once killed the drain task after
        # lanes were popped from the queue: the popped lanes hung and
        # every later submit joined a queue nobody drained.
        evaluate = RecordingEvaluator()

        def hostile_hook(kind, size):
            raise RuntimeError("histogram backend exploded")

        async def run():
            batcher = DynamicBatcher("echo", evaluate, max_batch_size=4,
                                     max_linger=0.01,
                                     on_batch=hostile_hook)
            first = await asyncio.gather(
                *(batcher.submit(i) for i in range(4)))
            # The drain task must have survived the hook to serve this.
            second = await asyncio.gather(
                *(batcher.submit(i) for i in range(4, 8)))
            await batcher.close()
            return first + second

        results = asyncio.run(run())
        assert [result for result, _size in results] \
            == [{"echo": i} for i in range(8)]
        assert len(evaluate.batches) == 2

    def test_close_rejects_lanes_left_behind_by_a_dead_drain_task(self):
        # The close/linger race, distilled: the drain task is gone while
        # a lane still sits in the queue.  close() must reject that lane
        # explicitly instead of returning with it parked forever.
        async def run():
            batcher = DynamicBatcher("echo", RecordingEvaluator(),
                                     max_linger=30.0)
            waiter = asyncio.ensure_future(batcher.submit(0))
            await asyncio.sleep(0.01)  # lane admitted, drain lingering
            batcher._task.cancel()     # simulate the task dying
            await asyncio.sleep(0)
            await batcher.close()      # must not leak CancelledError
            with pytest.raises(ServiceClosedError,
                               match="before the lane dispatched"):
                await waiter

        asyncio.run(run())
