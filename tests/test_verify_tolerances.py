"""Unit tests for the tolerance ledger and named unit tolerances."""

import pytest

from repro.verify import (ANY_REGIME, DEFAULT_LEDGER, UNIT_TOLERANCES,
                          ToleranceLedger, ToleranceRule, oracle_names,
                          unit_tolerance)


class TestToleranceRule:
    def test_regime_wildcard_matches_everything(self):
        rule = ToleranceRule("a", "b", ANY_REGIME, 0.1)
        for regime in ("overdamped", "critically_damped", "underdamped"):
            assert rule.matches(regime, 0.5)

    def test_specific_regime_excludes_others(self):
        rule = ToleranceRule("a", "b", "underdamped", 0.1)
        assert rule.matches("underdamped", 0.5)
        assert not rule.matches("overdamped", 0.5)

    def test_threshold_range_inclusive(self):
        rule = ToleranceRule("a", "b", ANY_REGIME, 0.1, f_min=0.3, f_max=0.7)
        assert rule.matches("overdamped", 0.3)
        assert rule.matches("overdamped", 0.7)
        assert not rule.matches("overdamped", 0.29)
        assert not rule.matches("overdamped", 0.71)


class TestToleranceLedger:
    def test_first_match_wins(self):
        ledger = ToleranceLedger([
            ToleranceRule("a", "b", "underdamped", 0.5, f_min=0.75),
            ToleranceRule("a", "b", ANY_REGIME, 0.1),
        ])
        assert ledger.bound_for("a", "b", "underdamped", 0.9).rel_tol == 0.5
        assert ledger.bound_for("a", "b", "underdamped", 0.5).rel_tol == 0.1
        assert ledger.bound_for("a", "b", "overdamped", 0.9).rel_tol == 0.1

    def test_missing_rule_returns_none(self):
        ledger = ToleranceLedger([ToleranceRule("a", "b", "overdamped", 0.1)])
        assert ledger.bound_for("a", "b", "underdamped", 0.5) is None
        assert ledger.bound_for("x", "y", "overdamped", 0.5) is None

    def test_pairs_deduplicated_in_order(self):
        ledger = ToleranceLedger([
            ToleranceRule("a", "b", "overdamped", 0.1),
            ToleranceRule("c", "d", ANY_REGIME, 0.2),
            ToleranceRule("a", "b", "underdamped", 0.3),
        ])
        assert ledger.pairs() == [("a", "b"), ("c", "d")]

    def test_payload_round_trips_fields(self):
        payload = DEFAULT_LEDGER.to_payload()
        assert len(payload) == len(DEFAULT_LEDGER.rules)
        assert all(entry["justification"] for entry in payload)


class TestDefaultLedger:
    def test_every_rule_names_registered_oracles(self):
        names = set(oracle_names())
        for rule in DEFAULT_LEDGER.rules:
            assert rule.subject in names, rule
            assert rule.reference in names, rule

    def test_every_rule_physically_sane(self):
        for rule in DEFAULT_LEDGER.rules:
            assert rule.rel_tol > 0.0
            assert 0.0 <= rule.f_min <= rule.f_max <= 1.0
            assert len(rule.justification) > 40, \
                f"{rule.subject} vs {rule.reference} lacks a justification"

    def test_elmore_underdamped_intentionally_unchecked(self):
        # The single-pole model cannot represent ringing; there must be
        # no rule claiming otherwise.
        assert DEFAULT_LEDGER.bound_for(
            "elmore", "two_pole", "underdamped", 0.5) is None

    def test_km_critical_is_bit_tight(self):
        rule = DEFAULT_LEDGER.bound_for(
            "kahng_muddu", "two_pole", "critically_damped", 0.5)
        assert rule.rel_tol <= 1e-6


class TestUnitTolerances:
    def test_lookup_returns_value(self):
        assert unit_tolerance("delay.critical_closed_form.rel") == 1e-4

    def test_unknown_name_lists_known(self):
        with pytest.raises(KeyError, match="delay.on_threshold.abs"):
            unit_tolerance("delay.nonexistent.rel")

    def test_names_follow_suite_subject_kind_convention(self):
        for name in UNIT_TOLERANCES:
            parts = name.split(".")
            assert len(parts) >= 3, name
            assert parts[-1] in ("rel", "abs"), name
            assert UNIT_TOLERANCES[name] > 0.0, name
