"""Unit tests for the wire-width co-optimization."""

import pytest

from repro import optimize_repeater, units
from repro.core.wire_sizing import (WireSizingResult, line_from_geometry,
                                    optimize_wire_width)
from repro.errors import ParameterError
from repro.extraction import wire_from_tech
from repro.tech import NODE_100NM


@pytest.fixture(scope="module")
def reference_wire():
    return wire_from_tech(NODE_100NM.geometry)


class TestLineFromGeometry:
    def test_resistance_scales_inversely_with_width(self, reference_wire):
        node = NODE_100NM
        narrow = line_from_geometry(reference_wire, 1e-6, 4e-6,
                                    node.epsilon_r, inductance=1e-6)
        wide = line_from_geometry(reference_wire, 2e-6, 4e-6,
                                  node.epsilon_r, inductance=1e-6)
        assert narrow.r == pytest.approx(2.0 * wide.r, rel=1e-9)

    def test_capacitance_grows_with_width_at_fixed_pitch(self,
                                                         reference_wire):
        node = NODE_100NM
        narrow = line_from_geometry(reference_wire, 1e-6, 4e-6,
                                    node.epsilon_r, inductance=1e-6)
        wide = line_from_geometry(reference_wire, 3e-6, 4e-6,
                                  node.epsilon_r, inductance=1e-6)
        assert wide.c > narrow.c

    def test_fixed_vs_extracted_inductance(self, reference_wire):
        node = NODE_100NM
        fixed = line_from_geometry(reference_wire, 2e-6, 4e-6,
                                   node.epsilon_r, inductance=2e-6)
        assert fixed.l == 2e-6
        extracted = line_from_geometry(reference_wire, 2e-6, 4e-6,
                                       node.epsilon_r, inductance=None)
        assert 0.0 < extracted.l < 2e-6       # loop-over-plane is sub-nH/mm

    def test_reproduces_table1_at_nominal_width(self, reference_wire):
        node = NODE_100NM
        line = line_from_geometry(reference_wire, node.geometry.width,
                                  node.geometry.pitch, node.epsilon_r,
                                  inductance=0.0 + 1e-9)
        assert units.to_pf_per_m(line.c) == pytest.approx(123.33, rel=0.1)
        assert units.to_ohm_per_mm(line.r) == pytest.approx(4.4, rel=0.01)

    def test_validation(self, reference_wire):
        node = NODE_100NM
        with pytest.raises(ParameterError):
            line_from_geometry(reference_wire, 0.0, 4e-6, node.epsilon_r)
        with pytest.raises(ParameterError):
            line_from_geometry(reference_wire, 4e-6, 4e-6, node.epsilon_r)


class TestWidthOptimization:
    @pytest.fixture(scope="class")
    def sized(self, ):
        node = NODE_100NM
        reference = wire_from_tech(node.geometry)
        return optimize_wire_width(reference, node.geometry.pitch,
                                   node.epsilon_r, node.driver,
                                   inductance=1.0 * units.NH_PER_MM)

    def test_result_structure(self, sized):
        assert isinstance(sized, WireSizingResult)
        assert 0.0 < sized.width < NODE_100NM.geometry.pitch
        assert sized.delay_per_length > 0.0
        assert sized.evaluations > 5

    def test_optimum_beats_boundary_widths(self, sized, reference_wire):
        node = NODE_100NM
        for width in (0.5e-6, 3.5e-6):
            line = line_from_geometry(reference_wire, width,
                                      node.geometry.pitch, node.epsilon_r,
                                      inductance=1.0 * units.NH_PER_MM)
            other = optimize_repeater(line, node.driver)
            assert other.delay_per_length >= sized.delay_per_length \
                * (1.0 - 1e-4)

    def test_interior_optimum(self, sized):
        """The r-vs-c trade-off puts the best width strictly inside the
        pitch (neither minimum nor maximum width wins)."""
        pitch = NODE_100NM.geometry.pitch
        assert 0.15 * pitch < sized.width < 0.85 * pitch

    def test_bounds_validated(self, reference_wire):
        node = NODE_100NM
        with pytest.raises(ParameterError):
            optimize_wire_width(reference_wire, node.geometry.pitch,
                                node.epsilon_r, node.driver,
                                width_bounds=(3e-6, 1e-6))
