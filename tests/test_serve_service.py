"""Tests for ReproService: batched-vs-solo equivalence, cache, isolation.

The kernel layer's contract makes batched serving *answer-preserving*:
every lane of a coalesced batch must return exactly what the request's
own ``job.run()`` would have.  These tests submit concurrent bursts so
the batcher genuinely coalesces (asserted through the batch-size
histogram), then compare payloads through ``canonical_json``.
"""

import asyncio

import pytest

from repro import NODE_100NM, OptimizerMethod, units
from repro.engine.cache import ResultCache
from repro.engine.jobs import (CriticalInductanceJob, DelayJob, OptimizeJob,
                               canonical_json, job_to_dict)
from repro.serve.protocol import (BadRequestError, EvaluationFailedError,
                                  ServeRequest, ServiceClosedError)
from repro.serve.service import EXACT_AT_ANY_BATCH_SIZE, ReproService

NH = units.NH_PER_MM

#: Trace counters describing the lockstep pooling itself — the one part
#: of an optimize payload that legitimately differs between a batched
#: lane and a solo run (see EXACT_AT_ANY_BATCH_SIZE).
EXECUTION_COUNTERS = ("lanes_evaluated", "batch_calls", "memo_hits")


def delay_jobs(l_values_nh):
    node = NODE_100NM
    return [DelayJob(line=node.line.with_inductance(l * NH),
                     driver=node.driver, h=0.01, k=150.0)
            for l in l_values_nh]


def optimize_jobs(l_values_nh):
    node = NODE_100NM
    return [OptimizeJob(line=node.line.with_inductance(l * NH),
                        driver=node.driver)
            for l in l_values_nh]


def poisoned_optimize_job():
    """Deterministically non-convergent: 1-iteration Newton, no re-seed."""
    return OptimizeJob(line=NODE_100NM.line_with_inductance(2.0 * NH),
                       driver=NODE_100NM.driver,
                       method=OptimizerMethod.NEWTON,
                       initial=(1e-4, 5.0), max_iterations=1,
                       retry_reseed=False)


def normalized(payload):
    """Canonical JSON with the lockstep execution counters removed."""
    document = dict(payload)
    trace = document.get("trace")
    if isinstance(trace, dict):
        document["trace"] = {k: v for k, v in trace.items()
                             if k not in EXECUTION_COUNTERS}
    return canonical_json(document)


def submit_burst(service, jobs, **request_kwargs):
    """Submit all jobs concurrently and close the service."""

    async def run():
        try:
            return await asyncio.gather(
                *(service.submit(ServeRequest(job=job, **request_kwargs))
                  for job in jobs),
                return_exceptions=True)
        finally:
            await service.close()

    return asyncio.run(run())


class TestBatchedEqualsSolo:
    def test_delay_lanes_bitwise_identical(self):
        jobs = delay_jobs([0.0, 0.5, 1.0, 1.5, 2.0])
        service = ReproService(cache=None, max_linger=0.2)
        responses = submit_burst(service, jobs)
        sizes = dict(service.metrics.batch_sizes)
        assert sizes == {("delay", len(jobs)): 1}  # truly coalesced
        for job, response in zip(jobs, responses):
            assert response["ok"] and response["batch_size"] == len(jobs)
            assert canonical_json(response["result"]) \
                == canonical_json(job.run())

    def test_critical_inductance_lanes_bitwise_identical(self):
        node = NODE_100NM
        jobs = [CriticalInductanceJob(line=node.line.with_inductance(l * NH),
                                      driver=node.driver, h=0.01, k=150.0)
                for l in (0.0, 1.0, 2.0)]
        service = ReproService(cache=None, max_linger=0.2)
        responses = submit_burst(service, jobs)
        assert ("critical_inductance", len(jobs)) \
            in service.metrics.batch_sizes
        for job, response in zip(jobs, responses):
            assert canonical_json(response["result"]) \
                == canonical_json(job.run())

    def test_optimize_lanes_identical_up_to_execution_counters(self):
        jobs = optimize_jobs([0.0, 0.7, 1.4])
        service = ReproService(cache=None, max_linger=0.2)
        responses = submit_burst(service, jobs)
        assert ("optimize", len(jobs)) in service.metrics.batch_sizes
        for job, response in zip(jobs, responses):
            solo = job.run()
            assert normalized(response["result"]) == normalized(solo)
            # The optimum itself is exactly equal, not approximately.
            assert response["result"]["h_opt"] == solo["h_opt"]
            assert response["result"]["k_opt"] == solo["k_opt"]
            assert response["result"]["tau"] == solo["tau"]


class TestFaultIsolation:
    def test_poisoned_optimize_lane_fails_alone(self):
        jobs = optimize_jobs([0.0, 1.0])
        jobs.insert(1, poisoned_optimize_job())
        service = ReproService(cache=None, max_linger=0.2)
        good_a, bad, good_b = submit_burst(service, jobs)
        assert good_a["ok"] and good_b["ok"]
        assert isinstance(bad, EvaluationFailedError)
        assert "did not converge" in bad.message
        # The surviving lanes still match their solo runs.
        assert normalized(good_a["result"]) == normalized(jobs[0].run())
        assert normalized(good_b["result"]) == normalized(jobs[2].run())


class TestCachePaths:
    def test_miss_then_hit(self, tmp_path):
        job = delay_jobs([1.0])[0]
        cache = ResultCache(tmp_path)
        first_service = ReproService(cache=cache, max_linger=0.0)
        (first,) = submit_burst(first_service, [job])
        assert first["cache"] == "miss"
        second_service = ReproService(cache=ResultCache(tmp_path),
                                      max_linger=0.0)
        (second,) = submit_burst(second_service, [job])
        assert second["cache"] == "hit"
        assert second["batch_size"] == 0  # answered without batching
        assert second["result"] == first["result"]
        assert second_service.metrics.cache_hits["delay"] == 1

    def test_no_cache_bypasses_both_ways(self, tmp_path):
        job = delay_jobs([1.0])[0]
        cache = ResultCache(tmp_path)
        service = ReproService(cache=cache, max_linger=0.0)
        (response,) = submit_burst(service, [job], no_cache=True)
        assert response["cache"] == "bypass"
        assert cache.stats().entries == 0

    def test_cache_off(self):
        (response,) = submit_burst(ReproService(cache=None, max_linger=0.0),
                                   delay_jobs([1.0]))
        assert response["cache"] == "off"

    def test_batched_results_are_cached_for_exact_kinds(self, tmp_path):
        jobs = delay_jobs([0.0, 0.5, 1.0])
        cache = ResultCache(tmp_path)
        responses = submit_burst(
            ReproService(cache=cache, max_linger=0.2), jobs)
        assert all(r["batch_size"] == len(jobs) for r in responses)
        assert cache.stats().entries == len(jobs)
        # The cached record replays bitwise what the engine would store.
        for job, response in zip(jobs, responses):
            assert ResultCache(tmp_path).get(job) == job.run()

    def test_batched_optimize_results_are_not_cached(self, tmp_path):
        assert "optimize" not in EXACT_AT_ANY_BATCH_SIZE
        jobs = optimize_jobs([0.0, 1.0])
        cache = ResultCache(tmp_path)
        responses = submit_burst(
            ReproService(cache=cache, max_linger=0.2), jobs)
        assert all(r["ok"] and r["batch_size"] == 2 for r in responses)
        assert cache.stats().entries == 0
        # A batch of one *is* cached: its trace is the engine's own.
        (solo,) = submit_burst(
            ReproService(cache=cache, max_linger=0.0), jobs[:1])
        assert solo["batch_size"] == 1
        assert ResultCache(tmp_path).get(jobs[0]) == jobs[0].run()


class TestLifecycleAndProtocol:
    def test_closed_service_refuses_submissions(self):
        async def run():
            service = ReproService(cache=None)
            await service.close()
            with pytest.raises(ServiceClosedError):
                await service.submit(
                    ServeRequest(job=delay_jobs([1.0])[0]))
            status, body = await service.handle(
                job_to_dict(delay_jobs([1.0])[0]))
            return status, body

        status, body = asyncio.run(run())
        assert status == 503
        assert body["error"]["code"] == "shutting_down"

    def test_handle_maps_bad_requests_to_400(self):
        async def run():
            service = ReproService(cache=None)
            try:
                return await service.handle({"kind": "bogus"})
            finally:
                await service.close()

        status, body = asyncio.run(run())
        assert status == 400
        assert body["error"]["code"] == "bad_request"
        assert "unknown request kind" in body["error"]["message"]

    def test_handle_happy_path_returns_200(self):
        job = delay_jobs([1.0])[0]

        async def run():
            service = ReproService(cache=None, max_linger=0.0)
            try:
                return await service.handle(job_to_dict(job))
            finally:
                await service.close()

        status, body = asyncio.run(run())
        assert status == 200
        assert body["ok"] is True
        assert canonical_json(body["result"]) == canonical_json(job.run())

    def test_metrics_payload_accounts_for_traffic(self):
        jobs = delay_jobs([0.0, 0.5, 1.0, 1.5])
        service = ReproService(cache=None, max_linger=0.2)
        submit_burst(service, jobs)
        payload = service.metrics.to_payload(
            queue_depth={"delay": 0, "optimize": 0})
        assert payload["requests_total"] == len(jobs)
        assert payload["requests"] == {"delay": len(jobs)}
        assert payload["outcomes"] == {"delay:ok": len(jobs)}
        assert payload["batch_size_histogram"] == {f"delay:{len(jobs)}": 1}
        assert payload["mean_batch_size"] == float(len(jobs))
        assert payload["latency_samples"] == len(jobs)
        assert set(payload["latency"]) == {"p50", "p95", "p99"}
        assert payload["queue_depth_total"] == 0
        summary = service.metrics.format_summary()
        assert f"requests: {len(jobs)} total" in summary
        assert "latency: p50=" in summary

    def test_parse_errors_do_not_reach_a_batcher(self):
        with pytest.raises(BadRequestError):
            from repro.serve.protocol import parse_request
            parse_request({"kind": "delay"})  # missing every field
