"""Unit tests for the Padé moments b1, b2 and their analytic derivatives."""

import pytest

from repro import Stage, compute_moments, units
from repro.core.moments import moments_from_lumped


def finite_difference(func, x, eps):
    return (func(x + eps) - func(x - eps)) / (2.0 * eps)


class TestMomentValues:
    def test_b1_equals_elmore_delay(self, stage_rlc):
        from repro import elmore_stage_delay
        moments = compute_moments(stage_rlc)
        assert moments.b1 == pytest.approx(elmore_stage_delay(stage_rlc),
                                           rel=1e-12)

    def test_b1_independent_of_inductance(self, stage_rc):
        base = compute_moments(stage_rc)
        with_l = compute_moments(stage_rc.with_inductance(3e-6))
        assert with_l.b1 == pytest.approx(base.b1, rel=1e-14)

    def test_b2_affine_in_inductance(self, stage_rc):
        """b2(l) = b2(0) + l * (c h^2/2 + C_L h)."""
        b2_0 = compute_moments(stage_rc).b2
        l = 2.0e-6
        b2_l = compute_moments(stage_rc.with_inductance(l)).b2
        c_load = stage_rc.sized_driver.c_load
        slope = 0.5 * stage_rc.line.c * stage_rc.h ** 2 + c_load * stage_rc.h
        assert b2_l - b2_0 == pytest.approx(l * slope, rel=1e-10)

    def test_moments_positive(self, stage_rc, stage_rlc):
        for stage in (stage_rc, stage_rlc):
            moments = compute_moments(stage)
            assert moments.b1 > 0.0
            assert moments.b2 > 0.0

    def test_discriminant_sign_flips_with_inductance(self, node, rc_opt):
        """RC stage is overdamped; enough inductance makes it underdamped."""
        stage = Stage(line=node.line, driver=node.driver,
                      h=rc_opt.h_opt, k=rc_opt.k_opt)
        assert compute_moments(stage).discriminant > 0.0
        heavy = stage.with_inductance(5.0 * units.NH_PER_MM)
        assert compute_moments(heavy).discriminant < 0.0

    def test_matches_hand_computed_reference(self):
        """Spot check against a fully hand-evaluated configuration."""
        from repro import DriverParams, LineParams
        line = LineParams(r=1000.0, l=1e-6, c=1e-10)
        driver = DriverParams(r_s=1000.0, c_p=2e-15, c_0=1e-15)
        stage = Stage(line=line, driver=driver, h=0.001, k=10.0)
        # R_S = 100, C_P = 2e-14, C_L = 1e-14, rh = 1, ch = 1e-13, lh = 1e-9
        # b1 = 100*3e-14 + 1e-13*1/2 + 100*1e-13 + 1e-14*1
        b1_expected = 3e-12 + 5e-14 + 1e-11 + 1e-14
        moments = compute_moments(stage)
        assert moments.b1 == pytest.approx(b1_expected, rel=1e-12)
        # b2 term by term with r c h^2 = 1e-13:
        rch2 = 1000.0 * 1e-10 * 0.001 ** 2
        b2_expected = (1e-6 * 1e-10 * 0.001 ** 2 / 2.0        # l c h^2 / 2
                       + rch2 ** 2 / 24.0                     # (r c h^2)^2/24
                       + 100.0 * 3e-14 * rch2 / 2.0           # R_S(C_P+C_L)...
                       + (100.0 * 1e-13 + 1e-14 * 1.0) * rch2 / 6.0
                       + 1e-14 * 1e-6 * 0.001                 # C_L l h
                       + 100.0 * 2e-14 * 1e-14 * 1.0)         # R_S C_P C_L r h
        assert moments.b2 == pytest.approx(b2_expected, rel=1e-12)


class TestMomentDerivatives:
    @pytest.mark.parametrize("l_nh", [0.0, 0.5, 2.0])
    def test_db_dh_matches_finite_difference(self, node, rc_opt, l_nh):
        line = node.line_with_inductance(l_nh * units.NH_PER_MM)
        h0, k0 = rc_opt.h_opt, rc_opt.k_opt
        moments = compute_moments(Stage(line=line, driver=node.driver,
                                        h=h0, k=k0))
        eps = 1e-6 * h0

        def b1_of_h(h):
            return compute_moments(Stage(line=line, driver=node.driver,
                                         h=h, k=k0)).b1

        def b2_of_h(h):
            return compute_moments(Stage(line=line, driver=node.driver,
                                         h=h, k=k0)).b2

        assert moments.db1_dh == pytest.approx(
            finite_difference(b1_of_h, h0, eps), rel=1e-6)
        assert moments.db2_dh == pytest.approx(
            finite_difference(b2_of_h, h0, eps), rel=1e-6)

    @pytest.mark.parametrize("l_nh", [0.0, 0.5, 2.0])
    def test_db_dk_matches_finite_difference(self, node, rc_opt, l_nh):
        line = node.line_with_inductance(l_nh * units.NH_PER_MM)
        h0, k0 = rc_opt.h_opt, rc_opt.k_opt
        moments = compute_moments(Stage(line=line, driver=node.driver,
                                        h=h0, k=k0))
        eps = 1e-4 * k0

        def b1_of_k(k):
            return compute_moments(Stage(line=line, driver=node.driver,
                                         h=h0, k=k)).b1

        def b2_of_k(k):
            return compute_moments(Stage(line=line, driver=node.driver,
                                         h=h0, k=k)).b2

        assert moments.db1_dk == pytest.approx(
            finite_difference(b1_of_k, k0, eps), rel=1e-6)
        assert moments.db2_dk == pytest.approx(
            finite_difference(b2_of_k, k0, eps), rel=1e-6)


class TestMomentsFromLumped:
    def test_agrees_with_stage_form(self, stage_rlc):
        drv = stage_rlc.sized_driver
        b1, b2 = moments_from_lumped(
            r_series=drv.r_series, c_parasitic=drv.c_parasitic,
            c_load=drv.c_load, r=stage_rlc.line.r, l=stage_rlc.line.l,
            c=stage_rlc.line.c, h=stage_rlc.h)
        moments = compute_moments(stage_rlc)
        assert b1 == pytest.approx(moments.b1, rel=1e-14)
        assert b2 == pytest.approx(moments.b2, rel=1e-14)

    def test_supports_asymmetric_load(self):
        """Lumped form allows C_L decoupled from the sizing law."""
        b1_small, _ = moments_from_lumped(r_series=100.0, c_parasitic=1e-14,
                                          c_load=1e-15, r=4400.0, l=0.0,
                                          c=2e-10, h=0.01)
        b1_large, _ = moments_from_lumped(r_series=100.0, c_parasitic=1e-14,
                                          c_load=1e-13, r=4400.0, l=0.0,
                                          c=2e-10, h=0.01)
        assert b1_large > b1_small
