"""Tests for the ``repro-faults`` CLI and the campaign harness.

The acceptance contract of the fault plane is exercised end to end
here: ``replay`` of one plan string twice produces the identical event
sequence, and the (slow-marked) campaign fires every registered fault
site at least once with all invariants held.
"""

import json

import pytest

from repro.faults import FAULT_POINTS, FaultPlan
from repro.faults.cli import main
from repro.faults.harness import (SITE_RULES, run_campaign, run_plan,
                                  scenario_plan, site_plan)


class TestPlanCommand:
    def test_list_sites(self, capsys):
        assert main(["plan", "--list-sites"]) == 0
        out = capsys.readouterr().out
        for name in FAULT_POINTS:
            assert name in out

    def test_rule_spec_round_trips(self, capsys):
        assert main(["plan", "--rule", "cache.get.torn_record:nth:2",
                     "--rule", "server.read.drop",
                     "--seed", "7"]) == 0
        plan = FaultPlan.from_string(capsys.readouterr().out.strip())
        assert plan.seed == 7
        assert [(rule.site, rule.mode, rule.n) for rule in plan.rules] \
            == [("cache.get.torn_record", "nth", 2),
                ("server.read.drop", "nth", 1)]

    def test_prob_rule_spec(self, capsys):
        assert main(["plan", "--rule",
                     "batcher.evaluate.error:prob:0.25"]) == 0
        plan = FaultPlan.from_string(capsys.readouterr().out.strip())
        assert plan.rules[0].mode == "prob"
        assert plan.rules[0].p == 0.25

    def test_unknown_site_fails(self, capsys):
        assert main(["plan", "--rule", "no.such.site"]) == 2
        assert "unknown fault site" in capsys.readouterr().err

    def test_no_rule_fails(self, capsys):
        assert main(["plan"]) == 2

    def test_scenario_plan(self, capsys):
        assert main(["plan", "--scenario", "cache", "--seed", "3"]) == 0
        plan = FaultPlan.from_string(capsys.readouterr().out.strip())
        assert {rule.site for rule in plan.rules} \
            == {name for name, point in FAULT_POINTS.items()
                if point.scenario == "cache"}

    def test_unknown_scenario_fails(self, capsys):
        assert main(["plan", "--scenario", "bogus"]) == 2


class TestReplayCommand:
    def test_inert_plan_holds_all_invariants(self, capsys):
        assert main(["replay", '{"rules":[],"seed":0}']) == 0
        out = capsys.readouterr().out
        assert "invariants: all held" in out
        assert "events: none fired" in out

    def test_malformed_plan_fails_cleanly(self, capsys):
        assert main(["replay", "{broken"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_plan_from_file(self, tmp_path, capsys):
        plan_file = tmp_path / "plan.json"
        plan_file.write_text('{"rules":[],"seed":1}')
        assert main(["replay", f"@{plan_file}"]) == 0

    def test_replay_twice_is_identical(self, capsys):
        """The determinism acceptance: same plan, same event sequence."""
        plan = FaultPlan.from_string(
            '{"rules":['
            '{"mode":"nth","n":2,"site":"cache.get.os_error"},'
            '{"fraction":0.5,"mode":"nth","n":1,'
            '"site":"cache.get.torn_record"},'
            '{"mode":"nth","n":1,"site":"cache.put.stale_tmp"},'
            '{"mode":"nth","n":2,"site":"server.read.drop"}],"seed":42}')
        outputs = []
        for _ in range(2):
            assert main(["replay", plan.to_string()]) == 0
            outputs.append(capsys.readouterr().out)
        assert outputs[0] == outputs[1]
        assert "#1 " in outputs[0]  # events actually fired


class TestCampaignPresets:
    def test_every_site_has_a_preset(self):
        assert set(SITE_RULES) == set(FAULT_POINTS)

    def test_site_plan_arms_exactly_one_site(self):
        plan = site_plan("batcher.evaluate.error", seed=5)
        assert [rule.site for rule in plan.rules] \
            == ["batcher.evaluate.error"]
        with pytest.raises(ValueError, match="unknown fault site"):
            site_plan("no.such.site")

    def test_scenario_all_covers_registry(self):
        plan = scenario_plan("all")
        assert {rule.site for rule in plan.rules} == set(FAULT_POINTS)


class TestStoreScenario:
    def test_leader_crash_answers_every_follower(self):
        """16 followers watch their leader die; all are rejected, none
        hang — the single-flight answered-or-rejected contract."""
        report = run_plan(site_plan("store.singleflight.leader_crash"))
        assert report.ok, report.format_summary()
        assert report.fired.get("store.singleflight.leader_crash") == 1
        # Phase A's six solo evaluations succeed; Phase B's sixteen
        # followers are all answered with the injected failure.
        assert report.responses_ok == 6
        assert report.responses_error == 16

    def test_store_scenario_holds_invariants(self):
        report = run_plan(scenario_plan("store"))
        assert report.ok, report.format_summary()
        for site in ("store.memory.evict_race",
                     "store.disk.shard_unwritable",
                     "store.singleflight.leader_crash"):
            assert report.fired.get(site), f"{site} never fired"


@pytest.mark.slow
class TestFullCampaign:
    def test_campaign_covers_every_site_with_invariants_held(self,
                                                             tmp_path,
                                                             capsys):
        artifact = tmp_path / "failing-plans.jsonl"
        code = main(["campaign", "--seed", "20260809",
                     "--randomized-rounds", "3",
                     "--artifact", str(artifact)])
        out = capsys.readouterr().out
        assert code == 0, f"campaign failed:\n{out}"
        assert "UNCOVERED" not in out
        assert not artifact.exists()  # no failing plans -> no artifact

    def test_campaign_api_coverage_summary(self):
        campaign = run_campaign(seed=1)
        assert campaign.ok, campaign.format_summary()
        assert campaign.uncovered() == []
        for name in FAULT_POINTS:
            assert campaign.coverage[name] >= 1


def test_campaign_artifact_written_for_failing_plans(tmp_path, capsys,
                                                     monkeypatch):
    """A red campaign leaves its failing plans behind for replay."""
    from repro.faults import cli as faults_cli
    from repro.faults.harness import CampaignReport, RunReport, Violation

    def fake_campaign(*, seed, randomized_rounds):
        run = RunReport(plan_string='{"rules":[],"seed":0}')
        run.violations.append(Violation("answered", "synthetic"))
        report = CampaignReport(runs=[run])
        report.coverage = {name: 1 for name in FAULT_POINTS}
        return report

    monkeypatch.setattr("repro.faults.harness.run_campaign",
                        fake_campaign)
    artifact = tmp_path / "failing.jsonl"
    assert faults_cli.main(["campaign", "--artifact",
                            str(artifact)]) == 1
    lines = artifact.read_text().strip().splitlines()
    assert len(lines) == 1
    entry = json.loads(lines[0])
    assert entry["plan"] == '{"rules":[],"seed":0}'
    assert entry["violations"] == ["[answered] synthetic"]
