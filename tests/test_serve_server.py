"""End-to-end tests: HTTP server + blocking client over real sockets.

A :class:`ServerThread` runs the asyncio server on its own event-loop
thread while the test talks to it synchronously through
:class:`ServeClient` — exactly how the CLI and an external caller would.
"""

import threading
import time

import pytest

from repro import NODE_100NM, units
from repro.engine.jobs import DelayJob, canonical_json, job_to_dict
from repro.serve.client import ServeClient, ServeClientError
from repro.serve.server import ServerThread
from repro.serve.service import ReproService, evaluate_delay_batch

NH = units.NH_PER_MM


def delay_job(l_nh=1.0):
    return DelayJob(line=NODE_100NM.line.with_inductance(l_nh * NH),
                    driver=NODE_100NM.driver, h=0.01, k=150.0)


@pytest.fixture()
def server():
    with ServerThread(ReproService(cache=None, max_linger=0.05)) as handle:
        with ServeClient.from_url(handle.url) as client:
            yield handle, client


class TestEndpoints:
    def test_healthz(self, server):
        _handle, client = server
        body = client.healthz()
        assert body["status"] == "ok"
        assert body["queue_depth"] == 0

    def test_evaluate_matches_solo_run(self, server):
        _handle, client = server
        job = delay_job()
        body = client.evaluate(job_to_dict(job))
        assert body["ok"] is True
        assert body["kind"] == "delay"
        assert canonical_json(body["result"]) == canonical_json(job.run())

    def test_json_lines_body_coalesces(self, server):
        handle, client = server
        jobs = [delay_job(l) for l in (0.0, 0.5, 1.0, 1.5)]
        bodies = client.evaluate_many([job_to_dict(job) for job in jobs])
        assert len(bodies) == len(jobs)
        for job, body in zip(jobs, bodies):
            assert body["ok"], body
            assert canonical_json(body["result"]) \
                == canonical_json(job.run())
        # The concurrent NDJSON evaluation really formed a multi-lane
        # batch (the whole point of the protocol shape).
        assert any(body["batch_size"] >= 2 for body in bodies)
        histogram = client.metrics()["batch_size_histogram"]
        assert any(int(key.split(":")[1]) >= 2 for key in histogram)

    def test_metrics_counts_requests(self, server):
        _handle, client = server
        client.evaluate(job_to_dict(delay_job()))
        payload = client.metrics()
        assert payload["requests_total"] >= 1
        assert payload["requests"].get("delay", 0) >= 1
        assert "queue_depth" in payload

    def test_unknown_route_is_404(self, server):
        _handle, client = server
        with pytest.raises(ServeClientError) as err:
            client._request_json("GET", "/nope")
        assert err.value.status == 404
        assert err.value.code == "not_found"

    def test_bad_json_body_is_400(self, server):
        _handle, client = server
        status, payload = client._request("POST", "/v1/evaluate",
                                          b"{not json")
        assert status == 400
        assert b"bad_request" in payload

    def test_bad_request_document_is_400(self, server):
        _handle, client = server
        with pytest.raises(ServeClientError) as err:
            client.evaluate({"kind": "transmogrify"})
        assert err.value.status == 400
        assert err.value.code == "bad_request"

    def test_get_on_evaluate_is_405(self, server):
        _handle, client = server
        status, _payload = client._request("GET", "/v1/evaluate")
        assert status == 405


class TestGracefulShutdown:
    def test_in_flight_request_completes_through_shutdown(self):
        """Stopping the server never drops an accepted request."""
        started = threading.Event()

        def slow_delay_batch(jobs):
            started.set()
            time.sleep(0.3)
            return evaluate_delay_batch(jobs)

        service = ReproService(cache=None, max_linger=0.0,
                               evaluators={"delay": slow_delay_batch})
        handle = ServerThread(service).start()
        job = delay_job()
        outcome = {}

        def request():
            with ServeClient.from_url(handle.url) as client:
                try:
                    outcome["body"] = client.evaluate(job_to_dict(job))
                except Exception as exc:  # noqa: BLE001 — assert below
                    outcome["error"] = exc

        requester = threading.Thread(target=request)
        requester.start()
        # Shut down while the request is inside the slow evaluator.
        assert started.wait(timeout=10.0)
        handle.stop()
        requester.join(timeout=10.0)
        assert not requester.is_alive()
        assert "error" not in outcome, outcome
        assert outcome["body"]["ok"] is True
        assert canonical_json(outcome["body"]["result"]) \
            == canonical_json(job.run())

    def test_requests_after_shutdown_are_refused(self):
        handle = ServerThread(ReproService(cache=None)).start()
        url = handle.url
        handle.stop()
        with ServeClient.from_url(url, timeout=2.0) as client:
            with pytest.raises((ServeClientError, ConnectionError, OSError)):
                client.evaluate(job_to_dict(delay_job()))
