"""Round-trip property tests for engine job-spec serialization.

The cache contract is: spec -> canonical dict -> spec yields an identical
object and therefore an identical content-addressed cache key.  Any
asymmetry between ``canonical()`` and ``from_dict`` (a dropped field, a
default mismatch, a float-through-string detour) silently fragments the
cache or — worse — serves a stale result for a different configuration.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.optimize import OptimizerMethod
from repro.engine import (JOB_TYPES, DelayJob, OptimizeJob, ResultCache,
                          SweepJob, TransientJob, job_from_dict, job_to_dict,
                          register_job_type)
from repro.engine.jobs import ExperimentJob
from repro.verify import VerifyJob
from tests.strategies import drivers, lines, segment_lengths, \
    repeater_sizes, thresholds, verify_cases

delay_jobs = st.builds(
    DelayJob, line=lines, driver=drivers, h=segment_lengths,
    k=repeater_sizes, f=thresholds, polish_with_newton=st.booleans())

optimize_jobs = st.builds(
    OptimizeJob, line=lines, driver=drivers, f=thresholds,
    method=st.sampled_from(OptimizerMethod),
    initial=st.one_of(st.none(), st.tuples(segment_lengths, repeater_sizes)),
    tol=st.sampled_from([1e-9, 1e-12]),
    max_iterations=st.integers(min_value=10, max_value=500),
    retry_reseed=st.booleans())

sweep_jobs = st.builds(
    SweepJob, line_zero_l=lines, driver=drivers,
    l_values=st.lists(st.floats(min_value=0.0, max_value=1e-5),
                      min_size=1, max_size=5).map(tuple),
    f=thresholds, method=st.sampled_from(OptimizerMethod))

transient_jobs = st.builds(
    TransientJob, node_name=st.sampled_from(["250nm", "100nm"]),
    l_nh_per_mm=st.floats(min_value=0.0, max_value=10.0))

verify_jobs = st.builds(
    VerifyJob, case=verify_cases,
    oracle=st.sampled_from(["two_pole", "elmore", "talbot"]))

any_job = st.one_of(delay_jobs, optimize_jobs, sweep_jobs, transient_jobs,
                    verify_jobs)


class TestSpecRoundTrip:
    @given(job=any_job)
    @settings(max_examples=200, deadline=None)
    def test_dict_round_trip_is_identity(self, job):
        assert job_from_dict(job_to_dict(job)) == job

    @given(job=any_job)
    @settings(max_examples=100, deadline=None)
    def test_round_trip_preserves_cache_key(self, job, tmp_path_factory):
        cache = ResultCache(tmp_path_factory.mktemp("cache"))
        assert cache.key(job_from_dict(job_to_dict(job))) == cache.key(job)

    @given(job=delay_jobs)
    @settings(max_examples=50, deadline=None)
    def test_distinct_specs_get_distinct_keys(self, job, tmp_path_factory):
        cache = ResultCache(tmp_path_factory.mktemp("cache"))
        tweaked = DelayJob(line=job.line, driver=job.driver, h=job.h,
                           k=job.k, f=job.f,
                           polish_with_newton=not job.polish_with_newton)
        assert cache.key(tweaked) != cache.key(job)


class TestRegistry:
    def test_all_kinds_registered(self):
        assert set(JOB_TYPES) == {"delay", "batch_delay",
                                  "critical_inductance", "optimize",
                                  "batch_optimize", "sweep", "transient",
                                  "experiment", "verify"}
        assert JOB_TYPES["verify"] is VerifyJob

    def test_unknown_kind_error_lists_known(self):
        with pytest.raises(ValueError, match="delay"):
            job_from_dict({"kind": "nonexistent"})

    def test_register_rejects_missing_kind(self):
        with pytest.raises(TypeError, match="kind"):
            @register_job_type
            class NoKind:
                @classmethod
                def from_dict(cls, data):
                    return cls()

    def test_register_rejects_missing_from_dict(self):
        with pytest.raises(TypeError, match="from_dict"):
            @register_job_type
            class NoParser:
                kind = "no-parser"

    def test_experiment_job_round_trip(self):
        job = ExperimentJob.create("fig4", points=5)
        assert job_from_dict(job_to_dict(job)) == job
