"""Unit tests for the critical inductance l_crit (paper Eq. 4)."""

import pytest

from repro import (Damping, Stage, classify_damping, compute_moments,
                   critical_inductance, damping_margin, units)


class TestCriticalInductance:
    def test_setting_l_to_lcrit_gives_zero_discriminant(self, node, rc_opt):
        stage = Stage(line=node.line, driver=node.driver,
                      h=rc_opt.h_opt, k=rc_opt.k_opt)
        l_crit = critical_inductance(stage)
        assert l_crit > 0.0
        critical_stage = stage.with_inductance(l_crit)
        moments = compute_moments(critical_stage)
        assert classify_damping(moments.b1, moments.b2) \
            is Damping.CRITICALLY_DAMPED

    def test_below_lcrit_overdamped_above_underdamped(self, node, rc_opt):
        stage = Stage(line=node.line, driver=node.driver,
                      h=rc_opt.h_opt, k=rc_opt.k_opt)
        l_crit = critical_inductance(stage)
        below = compute_moments(stage.with_inductance(0.5 * l_crit))
        above = compute_moments(stage.with_inductance(2.0 * l_crit))
        assert below.discriminant > 0.0
        assert above.discriminant < 0.0

    def test_independent_of_stage_inductance(self, node, rc_opt):
        """l_crit describes the (h, k) geometry, not the stage's own l."""
        base = Stage(line=node.line, driver=node.driver,
                     h=rc_opt.h_opt, k=rc_opt.k_opt)
        modified = base.with_inductance(3.0 * units.NH_PER_MM)
        assert critical_inductance(base) == pytest.approx(
            critical_inductance(modified), rel=1e-14)

    def test_smaller_at_100nm_than_250nm(self):
        """Paper Fig. 4: scaled node goes underdamped at lower l."""
        from repro import NODE_100NM, NODE_250NM, rc_optimum
        values = {}
        for node in (NODE_250NM, NODE_100NM):
            rc_opt = rc_optimum(node.line, node.driver)
            stage = Stage(line=node.line, driver=node.driver,
                          h=rc_opt.h_opt, k=rc_opt.k_opt)
            values[node.name] = critical_inductance(stage)
        assert values["100nm"] < values["250nm"]

    def test_decreases_with_driver_strength(self, node, rc_opt):
        """A stronger driver (lower R_S) provides *less* series damping, so
        the stage rings at lower inductance: l_crit falls as k grows."""
        weak = Stage(line=node.line, driver=node.driver,
                     h=rc_opt.h_opt, k=0.5 * rc_opt.k_opt)
        strong = Stage(line=node.line, driver=node.driver,
                       h=rc_opt.h_opt, k=2.0 * rc_opt.k_opt)
        assert critical_inductance(strong) < critical_inductance(weak)


class TestDampingMargin:
    def test_unity_at_critical(self, node, rc_opt):
        stage = Stage(line=node.line, driver=node.driver,
                      h=rc_opt.h_opt, k=rc_opt.k_opt)
        critical_stage = stage.with_inductance(critical_inductance(stage))
        assert damping_margin(critical_stage) == pytest.approx(1.0, rel=1e-9)

    def test_zero_for_rc_stage(self, stage_rc):
        assert damping_margin(stage_rc) == 0.0

    def test_above_one_when_underdamped(self, stage_rlc):
        assert damping_margin(stage_rlc) > 1.0
