"""Underdamped edge cases for the threshold-delay solver.

The solver's contract is *first* crossing: bracket on a dense grid, Brent
inside the bracket, then an optional Newton polish that is accepted only
if it stays on the same crossing.  These tests pin the edges of that
contract — thresholds at the overshoot plateau, f -> 1, the critical
boundary — and the two fallback paths (Newton diverging, Newton leaving
the bracket) against brute-force dense bracketing.
"""

import numpy as np
import pytest

import repro.core.delay as delay_mod
from repro import (Damping, DriverParams, LineParams, Stage, StepResponse,
                   compute_moments, critical_inductance, threshold_delay)
from repro.errors import DelaySolverError
from repro.verify import unit_tolerance


def _underdamped_stage(l_factor):
    base = Stage(line=LineParams(r=4000.0, l=0.0, c=150e-12),
                 driver=DriverParams(r_s=10e3, c_p=5e-15, c_0=1.5e-15),
                 h=2e-3, k=100.0)
    return base.with_inductance(l_factor * critical_inductance(base))


def _brute_force_first_crossing(response, f, t_max, points=200_001):
    """First grid bin where the sampled response reaches f."""
    t = np.linspace(0.0, t_max, points)
    v = response(t)
    above = np.nonzero(v >= f)[0]
    assert above.size, f"response never reached {f} within {t_max}"
    i = int(above[0])
    return t[i - 1], t[i]


class TestOvershootPlateau:
    """Thresholds between 1 and the ringing peak."""

    @pytest.mark.parametrize("l_factor", [3.0, 10.0, 100.0])
    def test_threshold_just_below_peak(self, l_factor):
        stage = _underdamped_stage(l_factor)
        response = StepResponse.from_moments(compute_moments(stage))
        peak = 1.0 + response.overshoot()
        assert peak > 1.0
        f = min(0.999 * peak, 1.0 - 1e-9)
        result = threshold_delay(stage, f)
        assert result.damping is Damping.UNDERDAMPED
        assert response(result.tau) == pytest.approx(
            f, abs=unit_tolerance("delay.on_threshold.abs"))

    @pytest.mark.parametrize("f", [0.9, 0.99, 1.0 - 1e-6])
    def test_agrees_with_brute_force_bracketing(self, f):
        stage = _underdamped_stage(10.0)
        response = StepResponse.from_moments(compute_moments(stage))
        result = threshold_delay(stage, f)
        t_lo, t_hi = _brute_force_first_crossing(
            response, f, 12.0 * compute_moments(stage).b1)
        assert t_lo <= result.tau <= t_hi

    def test_first_crossing_not_a_later_ring(self):
        # A strongly ringing response crosses f = 0.9 several times; the
        # reported tau must be the first one.
        stage = _underdamped_stage(100.0)
        response = StepResponse.from_moments(compute_moments(stage))
        tau = threshold_delay(stage, 0.9).tau
        t_before = np.linspace(1e-18, tau * (1.0 - 1e-9), 10_000)
        assert np.all(response(t_before) < 0.9)


class TestNearUnityThreshold:
    def test_f_approaching_one_still_solves(self):
        stage = _underdamped_stage(10.0)
        response = StepResponse.from_moments(compute_moments(stage))
        taus = [threshold_delay(stage, f).tau
                for f in (0.9, 0.99, 0.999, 1.0 - 1e-6)]
        assert all(np.diff(taus) > 0.0)
        assert response(taus[-1]) == pytest.approx(
            1.0 - 1e-6, abs=unit_tolerance("delay.on_threshold.abs"))

    def test_overdamped_f_near_one_asymptotic_tail(self):
        # Without ringing the response approaches 1 from below, so the
        # crossing sits far out on the asymptotic tail — the stretched
        # bracket search must still find it.
        stage = Stage(line=LineParams(r=4000.0, l=0.0, c=150e-12),
                      driver=DriverParams(r_s=10e3, c_p=5e-15, c_0=1.5e-15),
                      h=2e-3, k=100.0)
        result = threshold_delay(stage, 1.0 - 1e-6)
        response = StepResponse.from_moments(compute_moments(stage))
        assert response(result.tau) == pytest.approx(
            1.0 - 1e-6, abs=unit_tolerance("delay.on_threshold.abs"))


class TestCriticalBoundary:
    @pytest.mark.parametrize("offset", [-1e-9, 0.0, 1e-9])
    def test_delay_continuous_across_l_crit(self, offset):
        stage = _underdamped_stage(1.0 + offset)
        at_crit = threshold_delay(_underdamped_stage(1.0), 0.5).tau
        near = threshold_delay(stage, 0.5).tau
        assert near == pytest.approx(
            at_crit,
            rel=unit_tolerance("delay.critical_boundary_continuity.rel"))

    def test_classification_flips_at_boundary(self):
        below = threshold_delay(_underdamped_stage(1.0 - 1e-6), 0.5)
        above = threshold_delay(_underdamped_stage(1.0 + 1e-6), 0.5)
        assert below.damping is Damping.OVERDAMPED
        assert above.damping is Damping.UNDERDAMPED


class TestNewtonFallbacks:
    """The two guarded paths of the polish step."""

    def test_raw_newton_can_land_on_a_later_crossing(self):
        # Seeded past the overshoot peak, the raw Newton iteration slides
        # down the ring and converges to a *later* crossing of the same
        # threshold — a valid root of Eq. 3 but the wrong arrival time.
        # This is exactly why threshold_delay only accepts a polish that
        # stayed inside the first-crossing bracket.
        stage = _underdamped_stage(100.0)
        response = StepResponse.from_moments(compute_moments(stage))
        tau_first = threshold_delay(stage, 0.9, polish_with_newton=False).tau
        seed = 1.5 * response.peak_time()
        tau_newton, _ = delay_mod.newton_delay(response, 0.9, seed)
        assert response(tau_newton) == pytest.approx(
            0.9,
            abs=unit_tolerance("delay.newton_crossing_residual.abs"))
        assert tau_newton > 2.0 * tau_first
        # The guarded solver is immune to the hazard.
        assert threshold_delay(stage, 0.9).tau == pytest.approx(
            tau_first, rel=unit_tolerance("delay.brent_vs_newton.rel"))

    def test_rejected_polish_keeps_brent_solution(self, monkeypatch):
        # Force the polish to land outside the bracket: threshold_delay
        # must fall back to the Brent tau and report zero iterations.
        stage = _underdamped_stage(10.0)
        expected = threshold_delay(stage, 0.9, polish_with_newton=False)

        def escaping_newton(response, f, tau0, **kwargs):
            return 100.0 * tau0, 7
        monkeypatch.setattr(delay_mod, "newton_delay", escaping_newton)

        result = threshold_delay(stage, 0.9, polish_with_newton=True)
        assert result.newton_iterations == 0
        assert result.tau == expected.tau

    def test_failing_polish_keeps_brent_solution(self, monkeypatch):
        stage = _underdamped_stage(10.0)
        expected = threshold_delay(stage, 0.9, polish_with_newton=False)

        def raising_newton(response, f, tau0, **kwargs):
            raise DelaySolverError("injected divergence")
        monkeypatch.setattr(delay_mod, "newton_delay", raising_newton)

        result = threshold_delay(stage, 0.9, polish_with_newton=True)
        assert result.newton_iterations == 0
        assert result.tau == expected.tau

    @pytest.mark.parametrize("l_factor", [2.5, 10.0, 100.0])
    @pytest.mark.parametrize("f", [0.2, 0.5, 0.9])
    def test_polish_agrees_with_brent(self, l_factor, f):
        stage = _underdamped_stage(l_factor)
        brent = threshold_delay(stage, f, polish_with_newton=False).tau
        polished = threshold_delay(stage, f, polish_with_newton=True).tau
        assert polished == pytest.approx(
            brent, rel=unit_tolerance("delay.brent_vs_newton.rel"))
