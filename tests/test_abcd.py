"""Unit tests for the ABCD two-port algebra."""

import cmath

import pytest

from repro import LineParams, ParameterError
from repro.core import abcd


class TestBasicBlocks:
    def test_identity(self):
        m = abcd.identity()
        assert (m.a, m.b, m.c, m.d) == (1.0, 0.0, 0.0, 1.0)

    def test_series_impedance(self):
        m = abcd.series_impedance(50.0)
        assert m.b == 50.0
        assert m.determinant == pytest.approx(1.0)

    def test_shunt_admittance(self):
        m = abcd.shunt_admittance(0.02)
        assert m.c == 0.02
        assert m.determinant == pytest.approx(1.0)

    def test_shunt_capacitor_at_frequency(self):
        s = 1j * 1e9
        m = abcd.shunt_capacitor(1e-12, s)
        assert m.c == pytest.approx(s * 1e-12)

    def test_cascade_is_matrix_product(self):
        a = abcd.series_impedance(10.0)
        b = abcd.shunt_admittance(0.1)
        m = a @ b
        # [[1, 10], [0, 1]] @ [[1, 0], [0.1, 1]] = [[2, 10], [0.1, 1]]
        assert m.a == pytest.approx(2.0)
        assert m.b == pytest.approx(10.0)
        assert m.c == pytest.approx(0.1)
        assert m.d == pytest.approx(1.0)

    def test_cascade_not_commutative(self):
        a = abcd.series_impedance(10.0)
        b = abcd.shunt_admittance(0.1)
        assert (a @ b).a != pytest.approx((b @ a).a)

    def test_voltage_transfer_rc_divider(self):
        """R in series with C to ground: H = 1/(1 + s R C)."""
        s = 1j * 1e8
        r, c = 1000.0, 1e-12
        chain = abcd.series_resistor(r) @ abcd.shunt_capacitor(c, s)
        assert chain.voltage_transfer_open() == pytest.approx(
            1.0 / (1.0 + s * r * c))

    def test_voltage_transfer_loaded_divider(self):
        """Series R loaded by R_L: H = R_L / (R + R_L)."""
        chain = abcd.series_resistor(100.0)
        assert chain.voltage_transfer_loaded(300.0) == pytest.approx(0.75)


class TestRlcLine:
    LINE = LineParams(r=4400.0, l=1e-6, c=2e-10)

    def test_reciprocity(self):
        m = abcd.rlc_line(self.LINE, 0.01, 1j * 1e9)
        assert m.determinant == pytest.approx(1.0, rel=1e-9)

    def test_symmetry_a_equals_d(self):
        m = abcd.rlc_line(self.LINE, 0.01, 1j * 1e9)
        assert m.a == m.d

    def test_two_half_lines_cascade_to_full_line(self):
        s = 1j * 5e8
        full = abcd.rlc_line(self.LINE, 0.01, s)
        half = abcd.rlc_line(self.LINE, 0.005, s)
        cascaded = half @ half
        assert cascaded.a == pytest.approx(full.a, rel=1e-10)
        assert cascaded.b == pytest.approx(full.b, rel=1e-10)
        assert cascaded.c == pytest.approx(full.c, rel=1e-10)

    def test_small_s_series_branch_continuous(self):
        """Series expansion and exact form must agree near the threshold."""
        h = 0.01
        # |theta h| just above/below the 1e-6 threshold.
        s_values = [1e-4 + 0j, 2e-4 + 0j]
        for s in s_values:
            m = abcd.rlc_line(self.LINE, h, s)
            # At tiny s, the line reduces to its total R and C:
            assert m.b == pytest.approx(self.LINE.r * h, rel=1e-3)
            assert m.c == pytest.approx(s * self.LINE.c * h, rel=1e-3)

    def test_lossless_line_matches_textbook(self):
        """r -> tiny: entries approach cos(beta h), j Z0 sin(beta h)."""
        lossless = LineParams(r=1e-6, l=1e-6, c=1e-10)
        omega = 2e9
        h = 0.01
        beta = omega * (lossless.l * lossless.c) ** 0.5
        z0 = (lossless.l / lossless.c) ** 0.5
        m = abcd.rlc_line(lossless, h, 1j * omega)
        assert m.a == pytest.approx(cmath.cos(beta * h), rel=1e-4)
        assert m.b == pytest.approx(1j * z0 * cmath.sin(beta * h), rel=1e-4)

    def test_rc_line_helper(self):
        s = 1j * 1e8
        a = abcd.rc_line(4400.0, 2e-10, 0.01, s)
        b = abcd.rlc_line(LineParams(r=4400.0, l=0.0, c=2e-10), 0.01, s)
        assert a.a == pytest.approx(b.a)
        assert a.b == pytest.approx(b.b)

    def test_rejects_nonpositive_length(self):
        with pytest.raises(ParameterError):
            abcd.rlc_line(self.LINE, 0.0, 1j * 1e9)
