"""Unit tests for the technology database and device characterization."""

import pytest

from repro import units
from repro.errors import ConvergenceError
from repro.tech import (NODE_100NM, NODE_100NM_EPS_250NM, NODE_250NM, NODES,
                        calibrate_inverter, get_node, measure_falling_delay,
                        measured_driver_params)


class TestNodeDatabase:
    def test_table1_line_parameters(self):
        assert units.to_ohm_per_mm(NODE_250NM.line.r) == pytest.approx(4.4)
        assert units.to_pf_per_m(NODE_250NM.line.c) == pytest.approx(203.50)
        assert units.to_pf_per_m(NODE_100NM.line.c) == pytest.approx(123.33)
        assert NODE_250NM.line.l == 0.0

    def test_table1_driver_parameters(self):
        assert units.to_kohm(NODE_250NM.driver.r_s) == pytest.approx(11.784)
        assert units.to_ff(NODE_250NM.driver.c_0) == pytest.approx(1.6314)
        assert units.to_ff(NODE_100NM.driver.c_p) == pytest.approx(3.68)

    def test_geometry_fields(self):
        geometry = NODE_250NM.geometry
        assert geometry.width == pytest.approx(2e-6)
        assert geometry.pitch == pytest.approx(4e-6)
        assert geometry.spacing == pytest.approx(2e-6)
        assert geometry.aspect_ratio == pytest.approx(1.25)
        assert geometry.cross_section_area == pytest.approx(5e-12)

    def test_get_node(self):
        assert get_node("250nm") is NODE_250NM
        assert get_node("100nm") is NODE_100NM
        with pytest.raises(KeyError):
            get_node("65nm")

    def test_line_with_inductance(self):
        line = NODE_100NM.line_with_inductance(2.0 * units.NH_PER_MM)
        assert line.l == pytest.approx(2e-6)
        assert NODE_100NM.line.l == 0.0

    def test_control_node_has_250nm_capacitance(self):
        """100nm devices + 250nm dielectric -> c identical to 250nm
        (identical top-metal geometry), the paper's Fig. 7 control."""
        assert NODE_100NM_EPS_250NM.line.c == pytest.approx(
            NODE_250NM.line.c, rel=1e-3)
        assert NODE_100NM_EPS_250NM.driver == NODE_100NM.driver
        assert NODE_100NM_EPS_250NM.epsilon_r == NODE_250NM.epsilon_r

    def test_registry_contains_all(self):
        assert set(NODES) >= {"250nm", "100nm"}
        assert NODE_100NM_EPS_250NM.name in NODES


class TestCharacterization:
    def test_analytic_calibration_close(self, node):
        """The analytic beta seed lands within ~15% of the target r_s."""
        calibration = calibrate_inverter(node)
        measured = measured_driver_params(calibration)
        assert measured.r_s == pytest.approx(node.driver.r_s, rel=0.15)
        assert measured.c_0 == node.driver.c_0
        assert measured.c_p == node.driver.c_p

    def test_refined_calibration_tight(self, node):
        """Refinement closes the loop to a few percent."""
        calibration = calibrate_inverter(node, refine=True)
        measured = measured_driver_params(calibration)
        assert measured.r_s == pytest.approx(node.driver.r_s, rel=0.05)

    def test_falling_delay_scales_with_load(self, node):
        calibration = calibrate_inverter(node)
        small = measure_falling_delay(calibration,
                                      c_load=10 * node.driver.c_0)
        large = measure_falling_delay(calibration,
                                      c_load=40 * node.driver.c_0)
        assert large > 2.0 * small

    def test_falling_delay_scales_inversely_with_size(self, node):
        calibration = calibrate_inverter(node)
        c_load = 50 * node.driver.c_0
        min_size = measure_falling_delay(calibration, c_load=c_load, k=1.0)
        double = measure_falling_delay(calibration, c_load=c_load, k=2.0)
        assert double == pytest.approx(min_size / 2.0, rel=0.15)

    def test_vth_fraction_respected(self, node):
        calibration = calibrate_inverter(node, vth_fraction=0.3)
        assert calibration.vth == pytest.approx(0.3 * node.vdd)
