"""Unit tests for the source waveform primitives."""

import math

import pytest

from repro.circuits.waveforms import (DC, PiecewiseLinear, Pulse, Sine, Step)
from repro.errors import ParameterError


class TestDC:
    def test_constant(self):
        source = DC(2.5)
        assert source(0.0) == 2.5
        assert source(1e9) == 2.5


class TestStep:
    def test_abrupt_step(self):
        source = Step(level=1.2, delay=1e-9)
        assert source(0.5e-9) == 0.0
        assert source(1e-9) == 0.0
        assert source(1.01e-9) == 1.2

    def test_linear_ramp(self):
        source = Step(level=2.0, delay=1e-9, rise=2e-9)
        assert source(1e-9) == 0.0
        assert source(2e-9) == pytest.approx(1.0)
        assert source(3e-9) == pytest.approx(2.0)
        assert source(10e-9) == 2.0


class TestPulse:
    def make(self):
        return Pulse(v1=0.0, v2=1.2, delay=1e-9, rise=0.1e-9, fall=0.1e-9,
                     width=0.8e-9, period=2e-9)

    def test_initial_value_before_delay(self):
        assert self.make()(0.0) == 0.0
        assert self.make()(0.99e-9) == 0.0

    def test_rise_interpolation(self):
        source = self.make()
        assert source(1.05e-9) == pytest.approx(0.6)

    def test_plateau(self):
        source = self.make()
        assert source(1.5e-9) == 1.2

    def test_fall_interpolation(self):
        source = self.make()
        assert source(1.95e-9) == pytest.approx(0.6)

    def test_periodicity(self):
        source = self.make()
        for t in (1.2e-9, 1.5e-9, 1.95e-9):
            assert source(t + 2e-9) == pytest.approx(source(t))
            assert source(t + 10e-9) == pytest.approx(source(t))

    def test_zero_rise_time_step(self):
        source = Pulse(v1=0.0, v2=1.0, rise=0.0, fall=0.0, width=1e-9,
                       period=2e-9)
        assert source(1e-15) == 1.0

    def test_rejects_inconsistent_timing(self):
        with pytest.raises(ParameterError):
            Pulse(v1=0.0, v2=1.0, rise=1e-9, fall=1e-9, width=1e-9,
                  period=2e-9)
        with pytest.raises(ParameterError):
            Pulse(v1=0.0, v2=1.0, period=0.0)
        with pytest.raises(ParameterError):
            Pulse(v1=0.0, v2=1.0, rise=-1e-12)


class TestPiecewiseLinear:
    def test_interpolation_and_clamping(self):
        source = PiecewiseLinear([(0.0, 0.0), (1e-9, 1.0), (2e-9, 0.5)])
        assert source(-1.0) == 0.0
        assert source(0.5e-9) == pytest.approx(0.5)
        assert source(1.5e-9) == pytest.approx(0.75)
        assert source(5e-9) == 0.5

    def test_rejects_non_monotonic_times(self):
        with pytest.raises(ParameterError):
            PiecewiseLinear([(0.0, 0.0), (1e-9, 1.0), (1e-9, 2.0)])

    def test_rejects_empty(self):
        with pytest.raises(ParameterError):
            PiecewiseLinear([])


class TestSine:
    def test_values(self):
        source = Sine(offset=1.0, amplitude=0.5, frequency=1e9)
        assert source(0.0) == pytest.approx(1.0)
        assert source(0.25e-9) == pytest.approx(1.5)
        assert source(0.75e-9) == pytest.approx(0.5)

    def test_quiet_before_delay(self):
        source = Sine(offset=1.0, amplitude=0.5, frequency=1e9, delay=1e-9)
        assert source(0.5e-9) == 1.0
        assert source(1.25e-9) == pytest.approx(1.5)

    def test_periodicity(self):
        source = Sine(offset=0.0, amplitude=1.0, frequency=2e9)
        assert source(0.3e-9) == pytest.approx(source(0.3e-9 + 0.5e-9),
                                               abs=1e-12)
        assert math.isclose(source(0.1e-9), -source(0.1e-9 + 0.25e-9),
                            abs_tol=1e-12)
