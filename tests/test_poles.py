"""Unit tests for pole computation, classification and sensitivities."""

import cmath

import pytest

from repro import (Damping, ParameterError, Stage, classify_damping,
                   compute_moments, compute_poles, units)
from repro.core.moments import Moments


def make_moments(b1, b2):
    """Moments with dummy derivatives for classification tests."""
    return Moments(b1=b1, b2=b2, db1_dh=0.0, db1_dk=0.0,
                   db2_dh=0.0, db2_dk=0.0)


class TestClassification:
    def test_overdamped(self):
        assert classify_damping(1.0, 0.1) is Damping.OVERDAMPED

    def test_underdamped(self):
        assert classify_damping(1.0, 1.0) is Damping.UNDERDAMPED

    def test_critically_damped_exact(self):
        assert classify_damping(2.0, 1.0) is Damping.CRITICALLY_DAMPED

    def test_critical_tolerance_scale_invariant(self):
        """Classification must not depend on the unit of time."""
        b1, b2 = 2.0, 1.0 + 1e-12
        for scale in (1.0, 1e-12, 1e12):
            assert classify_damping(b1 * scale, b2 * scale * scale) \
                is Damping.CRITICALLY_DAMPED


class TestPoleValues:
    def test_overdamped_poles_real_negative(self, stage_rc):
        poles = compute_poles(compute_moments(stage_rc))
        assert poles.damping is Damping.OVERDAMPED
        assert poles.s1.imag == 0.0
        assert poles.s2.imag == 0.0
        assert poles.s1.real < 0.0
        assert poles.s2.real < poles.s1.real  # s1 is the slow pole

    def test_underdamped_poles_conjugate(self, stage_rlc):
        poles = compute_poles(compute_moments(stage_rlc))
        assert poles.damping is Damping.UNDERDAMPED
        assert poles.s1 == pytest.approx(poles.s2.conjugate())
        assert poles.s1.real < 0.0

    def test_poles_satisfy_characteristic_equation(self, stage_rlc):
        moments = compute_moments(stage_rlc)
        poles = compute_poles(moments)
        for s in (poles.s1, poles.s2):
            residual = 1.0 + s * moments.b1 + s * s * moments.b2
            assert abs(residual) < 1e-9 * abs(s * s * moments.b2)

    def test_vieta_relations(self, stage_rlc):
        """s1 + s2 = -b1/b2 and s1 s2 = 1/b2."""
        moments = compute_moments(stage_rlc)
        poles = compute_poles(moments)
        assert poles.s1 + poles.s2 == pytest.approx(
            -moments.b1 / moments.b2, rel=1e-10)
        assert poles.s1 * poles.s2 == pytest.approx(
            1.0 / moments.b2, rel=1e-10)

    def test_natural_frequency_and_damping_ratio(self, stage_rlc):
        moments = compute_moments(stage_rlc)
        poles = compute_poles(moments)
        assert poles.natural_frequency == pytest.approx(
            1.0 / cmath.sqrt(moments.b2).real, rel=1e-9)
        zeta_expected = moments.b1 / (2.0 * moments.b2 ** 0.5)
        assert poles.damping_ratio == pytest.approx(zeta_expected, rel=1e-9)

    def test_rejects_nonpositive_moments(self):
        with pytest.raises(ParameterError):
            compute_poles(make_moments(1e-10, 0.0))
        with pytest.raises(ParameterError):
            compute_poles(make_moments(0.0, 1e-20))


class TestPoleDerivatives:
    @pytest.mark.parametrize("l_nh", [0.0, 1.0, 3.0])
    @pytest.mark.parametrize("variable", ["h", "k"])
    def test_against_finite_difference(self, node, rc_opt, l_nh, variable):
        line = node.line_with_inductance(l_nh * units.NH_PER_MM)
        h0, k0 = rc_opt.h_opt, rc_opt.k_opt

        def poles_at(h, k):
            return compute_poles(compute_moments(
                Stage(line=line, driver=node.driver, h=h, k=k)))

        poles = poles_at(h0, k0)
        if variable == "h":
            eps = 1e-7 * h0
            plus = poles_at(h0 + eps, k0)
            minus = poles_at(h0 - eps, k0)
            analytic = (poles.ds1_dh, poles.ds2_dh)
        else:
            eps = 1e-5 * k0
            plus = poles_at(h0, k0 + eps)
            minus = poles_at(h0, k0 - eps)
            analytic = (poles.ds1_dk, poles.ds2_dk)
        fd_s1 = (plus.s1 - minus.s1) / (2.0 * eps)
        fd_s2 = (plus.s2 - minus.s2) / (2.0 * eps)
        assert analytic[0] == pytest.approx(fd_s1, rel=1e-5)
        assert analytic[1] == pytest.approx(fd_s2, rel=1e-5)

    def test_conjugate_symmetry_of_derivatives(self, stage_rlc):
        """For conjugate poles, ds2/dx must be the conjugate of ds1/dx."""
        poles = compute_poles(compute_moments(stage_rlc))
        assert poles.ds2_dh == pytest.approx(poles.ds1_dh.conjugate())
        assert poles.ds2_dk == pytest.approx(poles.ds1_dk.conjugate())
