"""Unit tests for integer repeater staging."""

import pytest

from repro import optimize_repeater, units
from repro.core.staging import plan_staging
from repro.errors import ParameterError


class TestStaging:
    def test_long_net_near_continuous_bound(self, node):
        """Many stages: quantization penalty within a fraction of a %."""
        line = node.line_with_inductance(1.0 * units.NH_PER_MM)
        continuous = optimize_repeater(line, node.driver)
        total = 20.5 * continuous.h_opt        # deliberately off-grid
        plan = plan_staging(line, node.driver, total)
        assert plan.quantization_penalty < 1.005
        assert plan.n_stages in (20, 21)
        assert plan.segment_length == pytest.approx(total / plan.n_stages)
        assert plan.total_delay == pytest.approx(
            plan.n_stages * plan.stage_delay)

    def test_short_net_single_stage(self, node):
        """A net shorter than one optimal segment gets one stage."""
        line = node.line_with_inductance(1.0 * units.NH_PER_MM)
        continuous = optimize_repeater(line, node.driver)
        plan = plan_staging(line, node.driver, 0.3 * continuous.h_opt)
        assert plan.n_stages == 1

    def test_half_segment_rounding(self, node):
        """A 2.5-segment net picks the better of N = 2 and N = 3."""
        line = node.line_with_inductance(1.0 * units.NH_PER_MM)
        continuous = optimize_repeater(line, node.driver)
        total = 2.5 * continuous.h_opt
        plan = plan_staging(line, node.driver, total)
        assert plan.n_stages in (2, 3)
        # Quantization cost is visible but bounded at this small N.
        assert 1.0 <= plan.quantization_penalty < 1.05

    def test_penalty_never_below_bound(self, node):
        line = node.line_with_inductance(2.0 * units.NH_PER_MM)
        continuous = optimize_repeater(line, node.driver)
        for multiple in (1.3, 4.7, 9.2):
            plan = plan_staging(line, node.driver,
                                multiple * continuous.h_opt)
            assert plan.quantization_penalty >= 1.0 - 1e-9

    def test_k_reoptimized_for_quantized_segments(self, node):
        """The per-candidate k differs from the continuous k when the
        segment length is forced off-optimal."""
        line = node.line_with_inductance(1.0 * units.NH_PER_MM)
        continuous = optimize_repeater(line, node.driver)
        plan = plan_staging(line, node.driver, 1.4 * continuous.h_opt)
        assert plan.n_stages == 1
        # The 1.4x-long single segment wants a different repeater size.
        assert plan.k_opt != pytest.approx(continuous.k_opt, rel=0.02)

    def test_validation(self, node):
        with pytest.raises(ParameterError):
            plan_staging(node.line, node.driver, 0.0)
