"""Unit tests for the ladder discretization of a distributed line."""

import pytest

from repro import LineParams
from repro.circuits import (Capacitor, Circuit, GROUND, Inductor, Resistor,
                            add_rlc_ladder)
from repro.errors import ParameterError


LINE = LineParams(r=4400.0, l=1e-6, c=2e-10)
RC_LINE = LineParams(r=4400.0, l=0.0, c=2e-10)


class TestLadderConstruction:
    def test_element_totals(self):
        circuit = Circuit()
        ladder = add_rlc_ladder(circuit, "w", "a", "b", LINE, 0.01, 8)
        resistors = circuit.elements_of_type(Resistor)
        inductors = circuit.elements_of_type(Inductor)
        capacitors = circuit.elements_of_type(Capacitor)
        assert len(resistors) == len(inductors) == len(capacitors) == 8
        assert sum(r.resistance for r in resistors) == pytest.approx(44.0)
        assert sum(l.inductance for l in inductors) == pytest.approx(1e-8)
        assert sum(c.capacitance for c in capacitors) == pytest.approx(2e-12)
        assert ladder.segment_count == 8

    def test_rc_line_omits_inductors(self):
        circuit = Circuit()
        ladder = add_rlc_ladder(circuit, "w", "a", "b", RC_LINE, 0.01, 4)
        assert not circuit.elements_of_type(Inductor)
        assert all(s.inductor is None for s in ladder.sections)

    def test_terminals_connected(self):
        circuit = Circuit()
        ladder = add_rlc_ladder(circuit, "w", "a", "b", LINE, 0.01, 3)
        assert ladder.input_node == "a"
        assert ladder.output_node == "b"
        assert ladder.sections[-1].out_node == "b"

    def test_single_segment(self):
        circuit = Circuit()
        ladder = add_rlc_ladder(circuit, "w", "a", "b", LINE, 0.01, 1)
        assert ladder.segment_count == 1
        assert circuit.element("w.R1").resistance == pytest.approx(44.0)

    def test_current_probe_element(self):
        circuit = Circuit()
        ladder = add_rlc_ladder(circuit, "w", "a", "b", LINE, 0.01, 3)
        assert ladder.current_probe_element(0) == "w.L1"
        circuit2 = Circuit()
        rc_ladder = add_rlc_ladder(circuit2, "w", "a", "b", RC_LINE, 0.01, 3)
        assert rc_ladder.current_probe_element(0) == "w.R1"

    def test_unique_prefixes_coexist(self):
        circuit = Circuit()
        add_rlc_ladder(circuit, "w1", "a", "b", LINE, 0.01, 3)
        add_rlc_ladder(circuit, "w2", "b", "c", LINE, 0.01, 3)
        assert "w1.R1" in circuit and "w2.R1" in circuit

    @pytest.mark.parametrize("segments,length", [(0, 0.01), (-1, 0.01),
                                                 (4, 0.0), (4, -0.01)])
    def test_validation(self, segments, length):
        with pytest.raises(ParameterError):
            add_rlc_ladder(Circuit(), "w", "a", "b", LINE, length, segments)


class TestLadderElectrical:
    def test_dc_resistance_end_to_end(self):
        """DC: the ladder is just the series resistance."""
        from repro.circuits import dc_operating_point
        circuit = Circuit()
        circuit.voltage_source("V1", "a", GROUND, 1.0)
        add_rlc_ladder(circuit, "w", "a", "b", LINE, 0.01, 10)
        circuit.resistor("RL", "b", GROUND, 44.0)  # matched to line R
        solution = dc_operating_point(circuit)
        assert solution["b"] == pytest.approx(0.5, rel=1e-6)

    def test_time_of_flight_scales_with_length(self):
        """Step arrival at the far end ~ h sqrt(l c) for a low-loss line."""
        from repro.analysis import Waveform
        from repro.circuits import Step, simulate
        fast_line = LineParams(r=100.0, l=1e-6, c=2e-10)
        arrivals = []
        for h in (0.005, 0.01):
            circuit = Circuit()
            circuit.voltage_source("V1", "a", GROUND, Step(level=1.0))
            circuit.resistor("RS", "a", "in", 70.0)   # ~ Z0 source
            add_rlc_ladder(circuit, "w", "in", "b", fast_line, h, 40)
            circuit.capacitor("CL", "b", GROUND, 1e-15)
            t_flight = h * fast_line.time_of_flight_per_length
            result = simulate(circuit, 6.0 * t_flight, t_flight / 300.0)
            waveform = Waveform(result.time, result.voltage("b"))
            arrivals.append(waveform.first_crossing(0.45))
        assert arrivals[1] == pytest.approx(2.0 * arrivals[0], rel=0.1)
        t_flight_expected = 0.005 * fast_line.time_of_flight_per_length
        assert arrivals[0] == pytest.approx(t_flight_expected, rel=0.25)
