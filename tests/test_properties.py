"""Property-based tests (hypothesis) on the core invariants.

Strategies live in :mod:`tests.strategies` (shared with the verification
layer's property suites); they draw physically plausible on-chip
parameter ranges so every generated configuration is a meaningful
interconnect stage, not just a random float tuple.
"""

import math

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro import (Damping, LineParams, Stage, StepResponse,
                   classify_damping, compute_moments, compute_poles,
                   critical_inductance, elmore_stage_delay, rc_optimum,
                   threshold_delay)
from tests.strategies import drivers, lines, stages


class TestMomentInvariants:
    @given(stage=stages)
    @settings(max_examples=150, deadline=None)
    def test_moments_positive(self, stage):
        moments = compute_moments(stage)
        assert moments.b1 > 0.0
        assert moments.b2 > 0.0

    @given(stage=stages)
    @settings(max_examples=100, deadline=None)
    def test_b1_is_elmore_delay(self, stage):
        moments = compute_moments(stage)
        assert moments.b1 == pytest.approx(elmore_stage_delay(stage),
                                           rel=1e-9)

    @given(stage=stages, scale=st.floats(min_value=1.1, max_value=10.0))
    @settings(max_examples=100, deadline=None)
    def test_b2_monotone_in_inductance(self, stage, scale):
        # Denormal-range inductances are physically meaningless and drown
        # in the RC terms' float precision.
        assume(stage.line.l > 1e-12)
        base = compute_moments(stage).b2
        heavier = compute_moments(
            stage.with_inductance(stage.line.l * scale)).b2
        assert heavier > base

    @given(stage=stages)
    @settings(max_examples=100, deadline=None)
    def test_derivatives_match_finite_difference(self, stage):
        moments = compute_moments(stage)
        eps_h = 1e-6 * stage.h
        plus = compute_moments(stage.with_geometry(stage.h + eps_h, stage.k))
        minus = compute_moments(stage.with_geometry(stage.h - eps_h, stage.k))
        fd_b1 = (plus.b1 - minus.b1) / (2.0 * eps_h)
        fd_b2 = (plus.b2 - minus.b2) / (2.0 * eps_h)
        assert moments.db1_dh == pytest.approx(fd_b1, rel=1e-4, abs=1e-18)
        assert moments.db2_dh == pytest.approx(fd_b2, rel=1e-4, abs=1e-30)


class TestPoleInvariants:
    @given(stage=stages)
    @settings(max_examples=150, deadline=None)
    def test_poles_stable_and_consistent(self, stage):
        moments = compute_moments(stage)
        poles = compute_poles(moments)
        assert poles.s1.real < 0.0
        assert poles.s2.real < 0.0
        product = poles.s1 * poles.s2
        assert product.real == pytest.approx(1.0 / moments.b2, rel=1e-6)
        assert abs(product.imag) <= 1e-6 * abs(product.real)

    @given(stage=stages)
    @settings(max_examples=100, deadline=None)
    def test_classification_matches_pole_type(self, stage):
        moments = compute_moments(stage)
        poles = compute_poles(moments)
        if poles.damping is Damping.UNDERDAMPED:
            assert poles.s1.imag != 0.0
        elif poles.damping is Damping.OVERDAMPED:
            assert poles.s1.imag == 0.0


class TestResponseInvariants:
    @given(stage=stages)
    @settings(max_examples=75, deadline=None)
    def test_response_bounded_and_settles(self, stage):
        response = StepResponse.from_moments(compute_moments(stage))
        import numpy as np
        t = np.linspace(0.0, 3.0 * response.settling_time(0.01), 400)
        v = response(t)
        # A two-pole response never exceeds 2x the final value (worst
        # case overshoot -> 1 as zeta -> 0) and never dips below -1.
        assert np.all(v < 2.0)
        assert np.all(v > -1.0)
        assert v[-1] == pytest.approx(1.0, abs=0.02)

    @given(stage=stages)
    @settings(max_examples=75, deadline=None)
    def test_overshoot_undershoot_bounds(self, stage):
        response = StepResponse.from_moments(compute_moments(stage))
        overshoot = response.overshoot()
        assert 0.0 <= overshoot < 1.0
        assert 0.0 <= response.undershoot() <= overshoot + 1e-12


class TestDelayInvariants:
    @given(stage=stages, f=st.floats(min_value=0.05, max_value=0.95))
    @settings(max_examples=75, deadline=None)
    def test_delay_positive_and_on_threshold(self, stage, f):
        response = StepResponse.from_moments(compute_moments(stage))
        result = threshold_delay(response, f, polish_with_newton=False)
        assert result.tau > 0.0
        assert response(result.tau) == pytest.approx(f, abs=1e-6)

    @given(stage=stages, f1=st.floats(min_value=0.05, max_value=0.45),
           f2=st.floats(min_value=0.5, max_value=0.95))
    @settings(max_examples=50, deadline=None)
    def test_delay_monotone_in_threshold(self, stage, f1, f2):
        response = StepResponse.from_moments(compute_moments(stage))
        tau1 = threshold_delay(response, f1, polish_with_newton=False).tau
        tau2 = threshold_delay(response, f2, polish_with_newton=False).tau
        assert tau1 < tau2


class TestClosedFormInvariants:
    @given(line=lines, driver=drivers)
    @settings(max_examples=100, deadline=None)
    def test_rc_optimum_positive_and_scaling(self, line, driver):
        optimum = rc_optimum(line, driver)
        assert optimum.h_opt > 0.0
        assert optimum.k_opt > 0.0
        assert optimum.tau_opt > 0.0
        # h scales as 1/sqrt(rc): doubling r shrinks h by sqrt(2).
        double_r = LineParams(r=2.0 * line.r, l=line.l, c=line.c)
        shrunk = rc_optimum(double_r, driver)
        assert shrunk.h_opt == pytest.approx(optimum.h_opt / math.sqrt(2.0),
                                             rel=1e-9)

    @given(line=lines, driver=drivers)
    @settings(max_examples=100, deadline=None)
    def test_rc_optimum_inversion_roundtrip(self, line, driver):
        from repro import driver_from_rc_optimum
        optimum = rc_optimum(line, driver)
        recovered = driver_from_rc_optimum(line, optimum.h_opt,
                                           optimum.k_opt, optimum.tau_opt)
        assert recovered.r_s == pytest.approx(driver.r_s, rel=1e-6)
        assert recovered.c_0 == pytest.approx(driver.c_0, rel=1e-6)

    @given(line=lines, driver=drivers,
           h=st.floats(min_value=1e-3, max_value=3e-2),
           k=st.floats(min_value=10.0, max_value=2e3))
    @settings(max_examples=100, deadline=None)
    def test_critical_inductance_is_the_damping_boundary(self, line, driver,
                                                         h, k):
        stage = Stage(line=line, driver=driver, h=h, k=k)
        l_crit = critical_inductance(stage)
        assume(l_crit > 1e-9)     # representable inductances only
        below = compute_moments(stage.with_inductance(0.9 * l_crit))
        above = compute_moments(stage.with_inductance(1.1 * l_crit))
        assert classify_damping(below.b1, below.b2) is Damping.OVERDAMPED
        assert classify_damping(above.b1, above.b2) is Damping.UNDERDAMPED


class TestWaveformInvariants:
    @given(frequency=st.floats(min_value=1e8, max_value=5e9),
           amplitude=st.floats(min_value=0.1, max_value=3.0))
    @settings(max_examples=50, deadline=None)
    def test_sine_rms_relation(self, frequency, amplitude):
        import numpy as np
        from repro.analysis import Waveform
        period = 1.0 / frequency
        t = np.linspace(0.0, 20.0 * period, 4001)
        waveform = Waveform(t, amplitude * np.sin(2 * np.pi * frequency * t))
        assert waveform.rms() == pytest.approx(amplitude / math.sqrt(2.0),
                                               rel=1e-2)
        assert waveform.peak() == pytest.approx(amplitude, rel=1e-2)

    @given(level=st.floats(min_value=0.1, max_value=0.9),
           frequency=st.floats(min_value=1e8, max_value=2e9))
    @settings(max_examples=50, deadline=None)
    def test_crossings_alternate(self, level, frequency):
        import numpy as np
        from repro.analysis import Waveform
        period = 1.0 / frequency
        t = np.linspace(0.0, 10.5 * period, 8001)
        waveform = Waveform(t, 0.5 + 0.5 * np.sin(2 * np.pi * frequency * t))
        rising = waveform.rising_crossings(level)
        falling = waveform.falling_crossings(level)
        assert abs(rising.size - falling.size) <= 1
        merged = np.sort(np.concatenate([rising, falling]))
        assert np.all(np.diff(merged) > 0.0)
