"""Unit tests for the reliability screens (Sec. 3.3.2)."""

import numpy as np
import pytest

from repro.analysis import Waveform
from repro.analysis.currents import CurrentDensityReport
from repro.analysis.reliability import (DEFAULT_OXIDE_MARGIN, EM_PEAK_LIMIT,
                                        EM_RMS_LIMIT, assess_current_density,
                                        assess_oxide_stress)
from repro.errors import ParameterError


def density_report(peak, rms, area=5e-12):
    return CurrentDensityReport(peak_current=peak * area,
                                rms_current=rms * area,
                                cross_section=area,
                                window_start=0.0, window_end=1e-9)


class TestCurrentDensityScreen:
    def test_safe_wire_passes(self):
        verdict = assess_current_density(density_report(peak=1e9, rms=1e9))
        assert verdict.ok
        assert verdict.rms_utilization < 1.0
        assert verdict.peak_utilization < 1.0

    def test_joule_heating_violation(self):
        verdict = assess_current_density(
            density_report(peak=1e10, rms=3e10))
        assert not verdict.ok
        assert verdict.limiting_mechanism == "joule-heating"

    def test_em_violation(self):
        verdict = assess_current_density(
            density_report(peak=2e11, rms=1e9))
        assert not verdict.ok
        assert verdict.limiting_mechanism == "electromigration"

    def test_custom_limits(self):
        report = density_report(peak=1e9, rms=1e9)
        strict = assess_current_density(report, rms_limit=1e8,
                                        peak_limit=1e8)
        assert not strict.ok

    def test_rejects_nonpositive_limits(self):
        with pytest.raises(ParameterError):
            assess_current_density(density_report(1e9, 1e9), rms_limit=0.0)

    def test_utilization_values(self):
        verdict = assess_current_density(
            density_report(peak=EM_PEAK_LIMIT / 2.0, rms=EM_RMS_LIMIT / 4.0))
        assert verdict.peak_utilization == pytest.approx(0.5)
        assert verdict.rms_utilization == pytest.approx(0.25)


class TestOxideStress:
    def make_waveform(self, peak, trough, vdd=1.2):
        t = np.linspace(0.0, 1e-9, 200)
        values = (0.5 * (peak + trough)
                  + 0.5 * (peak - trough) * np.sin(2e10 * t))
        return Waveform(t, values)

    def test_clean_waveform_passes(self):
        waveform = self.make_waveform(peak=1.2, trough=0.0)
        report = assess_oxide_stress(waveform, 1.2)
        assert not report.violates
        assert report.overshoot_fraction == 0.0

    def test_overshoot_flagged(self):
        waveform = self.make_waveform(peak=1.5, trough=0.0)
        report = assess_oxide_stress(waveform, 1.2)
        assert report.violates
        assert report.overshoot_fraction == pytest.approx(0.25, abs=0.01)

    def test_undershoot_flagged(self):
        waveform = self.make_waveform(peak=1.2, trough=-0.4)
        report = assess_oxide_stress(waveform, 1.2)
        assert report.violates
        assert report.undershoot_fraction == pytest.approx(0.4 / 1.2,
                                                           abs=0.01)

    def test_margin_tolerates_small_overshoot(self):
        peak = 1.2 * (1.0 + 0.5 * DEFAULT_OXIDE_MARGIN)
        waveform = self.make_waveform(peak=peak, trough=0.0)
        assert not assess_oxide_stress(waveform, 1.2).violates

    def test_custom_margin(self):
        waveform = self.make_waveform(peak=1.3, trough=0.0)
        assert assess_oxide_stress(waveform, 1.2, margin=0.01).violates
        assert not assess_oxide_stress(waveform, 1.2, margin=0.2).violates

    def test_validation(self):
        waveform = self.make_waveform(peak=1.2, trough=0.0)
        with pytest.raises(ParameterError):
            assess_oxide_stress(waveform, 0.0)
        with pytest.raises(ParameterError):
            assess_oxide_stress(waveform, 1.2, margin=-0.1)
