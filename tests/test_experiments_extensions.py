"""Tests for the extension experiments (beyond the paper's artifacts)."""

import pytest

from repro.experiments import run_experiment


class TestCrosstalkExperiment:
    def test_rc_underestimates_noise(self):
        result = run_experiment("ext_crosstalk", segments=8,
                                l_values=(0.0, 1.0, 2.0))
        noise = {row[0]: row[1] for row in result.rows}
        assert noise[2.0] > 3.0 * noise[0.0]

    def test_noise_monotone_in_inductance(self):
        result = run_experiment("ext_crosstalk", segments=8,
                                l_values=(0.0, 1.0, 2.0))
        peaks = [row[1] for row in result.rows]
        assert peaks == sorted(peaks)

    def test_noise_fraction_of_vdd(self):
        result = run_experiment("ext_crosstalk", segments=8,
                                l_values=(1.5,))
        fraction = result.rows[0][3]
        assert 0.05 < fraction < 0.6


class TestMillerExperiment:
    def test_optimum_tracks_capacitance(self):
        result = run_experiment("ext_miller",
                                miller_factors=(0.0, 1.0, 2.0))
        c_values = [row[1] for row in result.rows]
        h_values = [row[2] for row in result.rows]
        k_values = [row[3] for row in result.rows]
        assert c_values == sorted(c_values)
        assert h_values == sorted(h_values, reverse=True)
        assert k_values == sorted(k_values)

    def test_h_scales_as_inverse_sqrt_c(self):
        """The c-invariance law: h_opt ~ 1/sqrt(c) at fixed l... up to the
        l-term's weak deviation."""
        result = run_experiment("ext_miller", miller_factors=(0.5, 2.0))
        (_, c1, h1, _, _), (_, c2, h2, _, _) = result.rows
        assert h1 / h2 == pytest.approx((c2 / c1) ** 0.5, rel=0.12)


class TestSkinExperiment:
    def test_ratios_start_at_one_and_grow(self):
        result = run_experiment("ext_skin")
        ratios = [row[2] for row in result.rows]
        assert ratios[0] == pytest.approx(1.0)
        assert ratios[-1] > 1.5
        assert ratios == sorted(ratios)

    def test_onset_recorded(self):
        result = run_experiment("ext_skin")
        assert 1e9 < result.data["onset"] < 1e10


class TestPowerExperiment:
    def test_penalty_monotone_in_budget(self):
        result = run_experiment("ext_power",
                                budget_fractions=(1.0, 0.85, 0.7))
        penalties = [row[4] for row in result.rows]
        assert penalties[0] == pytest.approx(1.0)
        assert penalties == sorted(penalties)

    def test_power_meets_budget(self):
        result = run_experiment("ext_power", budget_fractions=(0.8,))
        full = result.data["full_power"].dynamic_power_per_length
        assert result.rows[0][1] == pytest.approx(0.8 * full, rel=1e-4)


class TestSensitivityExperiment:
    def test_first_order_conditions_visible(self):
        result = run_experiment("ext_sensitivity")
        table = {row[0]: row[1] for row in result.rows}
        assert table["k"] == pytest.approx(0.0, abs=1e-6)
        assert table["h"] == pytest.approx(1.0, rel=1e-4)

    def test_c_elasticity_is_half(self):
        """Consequence of the (c, h, k) invariance at the optimum: the
        delay-per-length scales as sqrt(c), so tau = h * (tau/h) has
        c-elasticity exactly 1/2 along the optimal manifold."""
        result = run_experiment("ext_sensitivity")
        table = {row[0]: row[1] for row in result.rows}
        assert table["c"] == pytest.approx(0.5, rel=1e-4)

    def test_inductance_elasticity_positive(self):
        result = run_experiment("ext_sensitivity", l_nh=2.0)
        table = {row[0]: row[1] for row in result.rows}
        assert table["l"] > 0.1
