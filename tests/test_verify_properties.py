"""Property-based coverage for the verification layer's physical claims.

These are the cross-cutting invariants the differential checker relies
on, asserted over the shared physically-valid strategy space
(:mod:`tests.strategies`) rather than a handful of fixtures:

* delay grows with the line's RC product (inductance-free stages);
* the Elmore single-pole oracle is the limit of the two-pole model as
  the poles separate (large zeta);
* the repeater optimizer's stationarity residuals vanish at reported
  optima;
* the MNA ladder tracks the exact inversion on arbitrary cases (slow —
  runs in the CI verify job).
"""

import math

import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro import (OptimizationError, OptimizerMethod, compute_moments,
                   optimize_repeater, threshold_delay)
from repro.core.optimize import stationarity_residuals
from repro.verify import VerifyCase, evaluate, get_oracle
from tests.strategies import (drivers, inductive_lines, lines, rc_lines,
                              rc_stages, thresholds, verify_cases)


class TestDelayMonotoneInRC:
    @given(stage=rc_stages, f=thresholds,
           scale=st.floats(min_value=1.1, max_value=10.0))
    @settings(max_examples=100, deadline=None)
    def test_delay_grows_with_line_resistance(self, stage, f, scale):
        base = threshold_delay(stage, f, polish_with_newton=False).tau
        scaled_line = type(stage.line)(r=scale * stage.line.r, l=0.0,
                                       c=stage.line.c)
        heavier = type(stage)(line=scaled_line, driver=stage.driver,
                              h=stage.h, k=stage.k)
        assert threshold_delay(heavier, f,
                               polish_with_newton=False).tau > base

    @given(stage=rc_stages, f=thresholds,
           scale=st.floats(min_value=1.1, max_value=10.0))
    @settings(max_examples=100, deadline=None)
    def test_delay_grows_with_line_capacitance(self, stage, f, scale):
        base = threshold_delay(stage, f, polish_with_newton=False).tau
        scaled_line = type(stage.line)(r=stage.line.r, l=0.0,
                                       c=scale * stage.line.c)
        heavier = type(stage)(line=scaled_line, driver=stage.driver,
                              h=stage.h, k=stage.k)
        assert threshold_delay(heavier, f,
                               polish_with_newton=False).tau > base


class TestElmoreIsOverdampedLimit:
    @given(stage=rc_stages, f=st.floats(min_value=0.3, max_value=0.9))
    @settings(max_examples=100, deadline=None)
    def test_two_pole_approaches_elmore_at_large_zeta(self, stage, f):
        moments = compute_moments(stage)
        zeta = moments.b1 / (2.0 * math.sqrt(moments.b2))
        assume(zeta >= 5.0)
        case = VerifyCase(case_id="prop", line=stage.line,
                          driver=stage.driver, h=stage.h, k=stage.k, f=f)
        two_pole = evaluate(case, "two_pole").tau
        elmore = evaluate(case, "elmore").tau
        # Pole-separation ratio >= (2 zeta)^2 ~ 100 at zeta = 5; the
        # fast-pole residue bounds the disagreement at a few percent.
        assert two_pole == pytest.approx(elmore, rel=0.05)

    @given(stage=rc_stages, f=st.floats(min_value=0.3, max_value=0.9),
           r_s_scale=st.floats(min_value=4.0, max_value=50.0))
    # The two zeta assumes below discard most draws by design (only
    # well-separated-pole stages are in scope); without the suppression
    # the filter_too_much health check trips on unlucky random seeds.
    @settings(max_examples=50, deadline=None,
              suppress_health_check=[HealthCheck.filter_too_much])
    def test_agreement_improves_as_poles_separate(self, stage, f,
                                                  r_s_scale):
        # A larger driver resistance separates the poles (b1 grows
        # linearly, sqrt(b2) sub-linearly).  Where zeta genuinely grows,
        # the Elmore error must shrink.
        def zeta_of(the_stage):
            moments = compute_moments(the_stage)
            return moments.b1 / (2.0 * math.sqrt(moments.b2))

        def elmore_error(the_stage):
            case = VerifyCase(case_id="prop", line=the_stage.line,
                              driver=the_stage.driver, h=the_stage.h,
                              k=the_stage.k, f=f)
            two_pole = evaluate(case, "two_pole").tau
            return abs(two_pole - evaluate(case, "elmore").tau) / two_pole

        wider = type(stage)(
            line=stage.line,
            driver=type(stage.driver)(r_s=r_s_scale * stage.driver.r_s,
                                      c_p=stage.driver.c_p,
                                      c_0=stage.driver.c_0),
            h=stage.h, k=stage.k)
        # Line-dominated stages barely move; only claim monotonicity
        # where the separation materially changed.
        assume(2.0 <= zeta_of(stage) <= 20.0)
        assume(zeta_of(wider) >= 1.5 * zeta_of(stage))
        # Strict monotonicity breaks down at the solver noise floor: once
        # both errors sit near ~1e-4 the delay solver's own stopping
        # tolerance dominates the comparison.  Require improvement OR that
        # the wider-separation error is already below a small absolute
        # floor.
        assert elmore_error(wider) < max(elmore_error(stage), 1e-3)


class TestOptimizerStationarity:
    @given(line=inductive_lines, driver=drivers)
    @settings(max_examples=25, deadline=None)
    def test_residuals_vanish_at_reported_optimum(self, line, driver):
        try:
            optimum = optimize_repeater(line, driver,
                                        method=OptimizerMethod.DIRECT)
        except OptimizationError:
            assume(False)
        g1, g2, tau = stationarity_residuals(line, driver, optimum.h_opt,
                                             optimum.k_opt, 0.5)
        assert abs(g1) < 1e-4
        assert abs(g2) < 1e-4
        assert tau == pytest.approx(optimum.tau, rel=1e-6)


@pytest.mark.slow
class TestMnaOracleProperties:
    @given(case=verify_cases)
    @settings(max_examples=15, deadline=None)
    def test_mna_tracks_exact_inversion(self, case):
        assume(get_oracle("mna").supports(case))
        mna = evaluate(case, "mna").tau
        talbot = evaluate(case, "talbot").tau
        assert mna == pytest.approx(talbot, rel=0.05)

    @given(case=verify_cases)
    @settings(max_examples=10, deadline=None)
    def test_mna_deterministic(self, case):
        assume(get_oracle("mna").supports(case))
        assert evaluate(case, "mna").to_dict() == \
            evaluate(case, "mna").to_dict()
