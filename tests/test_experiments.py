"""Tests for the experiment framework and the analytic experiments."""

import pytest

from repro.experiments import (DESCRIPTIONS, REGISTRY, ExperimentResult,
                               all_experiment_ids, run_experiment)
from repro.experiments.runner import FAST_OVERRIDES, build_parser, resolve_ids


class TestFramework:
    def test_all_paper_artifacts_registered(self):
        paper = {"table1", "fig2", "fig4", "fig5", "fig6", "fig7", "fig8",
                 "fig9_10", "fig11", "fig12"}
        extensions = {"ext_crosstalk", "ext_miller", "ext_skin", "ext_power",
                      "ext_sensitivity", "ext_bus", "ext_robust"}
        assert set(all_experiment_ids()) == paper | extensions
        assert set(DESCRIPTIONS) == paper | extensions

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            run_experiment("fig99")

    def test_result_formatting(self):
        result = ExperimentResult(experiment_id="x", title="T",
                                  headers=["a", "bb"],
                                  rows=[[1.0, "y"], [2.5, "zz"]],
                                  notes=["hello"])
        table = result.format_table()
        assert "a" in table and "bb" in table and "zz" in table
        report = result.format_report()
        assert "== x: T ==" in report
        assert "note: hello" in report

    def test_duplicate_registration_rejected(self):
        from repro.experiments.base import experiment
        with pytest.raises(ValueError):
            experiment("table1", "duplicate")(lambda: None)

    def test_runner_resolve_ids(self):
        assert resolve_ids(["table1", "fig2", "table1"]) == ["table1", "fig2"]
        assert resolve_ids(["all"]) == all_experiment_ids()
        with pytest.raises(SystemExit):
            resolve_ids(["nope"])

    def test_runner_parser(self):
        args = build_parser().parse_args(["run", "fig7", "--fast"])
        assert args.command == "run"
        assert args.fast
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_fast_overrides_reference_real_kwargs(self):
        """Every fast override must be accepted by its experiment runner."""
        import inspect
        for experiment_id, overrides in FAST_OVERRIDES.items():
            signature = inspect.signature(REGISTRY[experiment_id])
            for key in overrides:
                assert key in signature.parameters, (experiment_id, key)


class TestTable1:
    def test_reproduces_paper_columns(self):
        result = run_experiment("table1")
        rows = {row[0]: row for row in result.rows}
        assert rows["250nm"][1] == pytest.approx(14.4, abs=0.05)   # h (mm)
        assert rows["250nm"][2] == pytest.approx(578, abs=1)       # k
        assert rows["250nm"][3] == pytest.approx(305.17, abs=0.1)  # tau (ps)
        assert rows["100nm"][1] == pytest.approx(11.1, abs=0.05)
        assert rows["100nm"][2] == pytest.approx(528, abs=1)
        assert rows["100nm"][3] == pytest.approx(105.94, abs=0.1)

    def test_extraction_columns_close_to_table(self):
        result = run_experiment("table1")
        rows = {row[0]: row for row in result.rows}
        assert rows["250nm"][4] == pytest.approx(203.5, rel=0.10)
        assert rows["100nm"][4] == pytest.approx(123.33, rel=0.10)
        assert rows["250nm"][5] == pytest.approx(4.4, rel=0.01)


class TestFig2:
    def test_three_regimes(self):
        result = run_experiment("fig2")
        by_regime = {row[0]: row for row in result.rows}
        assert by_regime["underdamped"][2] > 0.0          # overshoot
        assert by_regime["overdamped"][2] == 0.0
        assert by_regime["critically damped"][2] == 0.0
        assert by_regime["overdamped"][5]                  # monotonic
        assert not by_regime["underdamped"][5]
        # Overdamped is the slowest to reach 50%.
        assert by_regime["overdamped"][4] > \
            by_regime["critically damped"][4] > by_regime["underdamped"][4]


class TestOptimizerFigures:
    POINTS = 6

    def test_fig4_lcrit_ordering(self):
        result = run_experiment("fig4", points=self.POINTS)
        sweeps = result.data["sweeps"]
        import numpy as np
        assert np.all(sweeps["100nm"].l_crit < sweeps["250nm"].l_crit)

    def test_fig5_ratio_shape(self):
        result = run_experiment("fig5", points=self.POINTS)
        for row in result.rows:
            l_nh, ratio_250, ratio_100 = row
            if l_nh == 0.0:
                assert 0.9 < ratio_250 < 1.0
            else:
                assert ratio_100 > ratio_250 > 0.9

    def test_fig6_k_decreases_toward_matching(self):
        result = run_experiment("fig6", points=self.POINTS)
        ratios_250 = [row[1] for row in result.rows]
        assert all(b < a for a, b in zip(ratios_250, ratios_250[1:]))
        # k stays above the matched size (the asymptote from above).
        for row in result.rows[1:]:
            assert row[1] > row[2]          # 250nm: ratio > matched ratio
            assert row[3] > row[4]          # 100nm

    def test_fig7_final_ratios_match_paper_shape(self):
        result = run_experiment("fig7", points=self.POINTS)
        final = result.data["final_ratios"]
        # Paper: ~2x at 250nm, ~3.5x at 100nm; accept the shape band.
        assert 1.7 < final["250nm"] < 2.4
        assert 2.5 < final["100nm"] < 3.8
        assert final["100nm"] > 1.3 * final["250nm"]

    def test_fig7_control_tracks_100nm(self):
        """The identical-c control overlays the 100nm curve (invariance of
        the normalized ratio to c under the two-pole model)."""
        result = run_experiment("fig7", points=self.POINTS)
        final = result.data["final_ratios"]
        assert final["100nm-eps3.3"] == pytest.approx(final["100nm"],
                                                      rel=1e-3)

    def test_fig8_worst_penalties_match_paper(self):
        result = run_experiment("fig8", points=self.POINTS)
        worst = result.data["worst_penalty"]
        # Paper: ~6% at 250nm, ~12% at 100nm.
        assert 1.03 < worst["250nm"] < 1.12
        assert 1.08 < worst["100nm"] < 1.18
        assert worst["100nm"] > worst["250nm"]
