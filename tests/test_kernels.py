"""Array-first kernel layer: batched pipeline vs the scalar reference.

The contract under test is *bitwise* agreement: the kernels and the
scalar path share one set of expression graphs (``moments_terms``,
``two_pole_values``, ``critical_inductance_terms``), so moments, poles,
response samples, critical inductance and — with the scalar shim now
delegating to the batch-of-1 kernel — threshold delays must match to the
last bit, not merely to a tolerance.
"""

import numpy as np
import pytest

from repro import (DriverParams, LineParams, ParameterError, Stage,
                   canonical_response, compute_moments, compute_poles,
                   critical_inductance, threshold_delay, units)
from repro.core import brent_threshold_delay
from repro.core.kernels import (DAMPING_BY_CODE, ResponseBatch, StageBatch,
                                as_response_batch, classify_damping_v,
                                compute_moments_v, critical_inductance_v,
                                poles_v, response_v, threshold_delay_v)
from repro.core.response import StepResponse
from repro.engine import (BatchDelayJob, BatchExecutor, DelayJob,
                          ResultCache, job_from_dict, job_to_dict)
from repro.errors import DelaySolverError
from repro.verify import unit_tolerance


@pytest.fixture
def mixed_batch(node, rc_opt):
    """A batch spanning all three damping regimes at one sizing."""
    l_crit = critical_inductance(Stage(line=node.line, driver=node.driver,
                                       h=rc_opt.h_opt, k=rc_opt.k_opt))
    stages = [Stage(line=node.line.with_inductance(factor * l_crit),
                    driver=node.driver, h=rc_opt.h_opt, k=rc_opt.k_opt)
              for factor in (0.0, 0.4, 1.0, 2.5, 6.0)]
    return stages, StageBatch.from_stages(stages)


class TestStageBatch:
    def test_from_arrays_broadcasts_scalars(self, generic_line,
                                            generic_driver):
        batch = StageBatch.from_arrays(
            r=generic_line.r, l=[0.0, 1e-7, 2e-7], c=generic_line.c,
            r_s=generic_driver.r_s, c_p=generic_driver.c_p,
            c_0=generic_driver.c_0, h=1e-3, k=50.0)
        assert len(batch) == 3
        assert batch.r.shape == (3,)
        assert np.all(batch.h == 1e-3)

    def test_round_trip_through_stage(self, stage_rlc):
        batch = StageBatch.from_stages([stage_rlc])
        assert batch.stage(0) == stage_rlc

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ParameterError, match="shape"):
            StageBatch(r=np.ones(2), l=np.zeros(3), c=np.ones(2),
                       r_s=np.ones(2), c_p=np.zeros(2), c_0=np.ones(2),
                       h=np.ones(2), k=np.ones(2))

    def test_empty_batch_rejected(self):
        with pytest.raises(ParameterError, match="at least one"):
            StageBatch.from_stages([])

    def test_invalid_value_names_lane(self, generic_line, generic_driver):
        with pytest.raises(ParameterError, match=r"lane 1: c_0"):
            StageBatch.from_arrays(
                r=generic_line.r, l=generic_line.l, c=generic_line.c,
                r_s=generic_driver.r_s, c_p=generic_driver.c_p,
                c_0=[1e-15, 0.0], h=1e-3, k=10.0)


class TestMomentsAndPolesBitwise:
    def test_moments_match_scalar(self, mixed_batch):
        stages, batch = mixed_batch
        moments = compute_moments_v(batch)
        for i, stage in enumerate(stages):
            assert moments.moments(i) == compute_moments(stage), i

    def test_poles_match_scalar(self, mixed_batch):
        stages, batch = mixed_batch
        poles = poles_v(compute_moments_v(batch))
        for i, stage in enumerate(stages):
            scalar = compute_poles(compute_moments(stage))
            assert complex(poles.s1[i]) == scalar.s1, i
            assert complex(poles.s2[i]) == scalar.s2, i
            assert DAMPING_BY_CODE[int(poles.damping[i])] \
                == scalar.damping, i

    def test_nonpositive_b2_rejected_with_lane(self, mixed_batch):
        _, batch = mixed_batch
        moments = compute_moments_v(batch)
        broken = type(moments)(
            b1=moments.b1, b2=moments.b2 * np.where(
                np.arange(len(moments)) == 2, -1.0, 1.0),
            db1_dh=moments.db1_dh, db1_dk=moments.db1_dk,
            db2_dh=moments.db2_dh, db2_dk=moments.db2_dk)
        with pytest.raises(ParameterError, match="lane 2"):
            poles_v(broken)

    def test_classify_damping_v_regimes(self):
        b1 = np.array([4.0, 2.0, 1.0])
        b2 = np.array([1.0, 1.0, 1.0])  # disc: +12, 0, -3
        assert [DAMPING_BY_CODE[c].value
                for c in classify_damping_v(b1, b2)] \
            == ["overdamped", "critically_damped", "underdamped"]


class TestResponseBitwise:
    def test_values_match_scalar_call(self, mixed_batch):
        stages, batch = mixed_batch
        resp = ResponseBatch.from_stages(batch)
        scalars = [StepResponse.from_moments(compute_moments(stage))
                   for stage in stages]
        t = np.linspace(0.0, 5.0 * max(-1.0 / s.s1.real for s in scalars),
                        64)
        grid = resp.values(t)
        assert grid.shape == (len(stages), t.size)
        for i, scalar in enumerate(scalars):
            expected = np.array([scalar(ti) for ti in t])
            assert np.array_equal(grid[i], expected), i

    def test_response_v_accepts_step_responses(self):
        responses = [canonical_response(zeta, 1e9)
                     for zeta in (0.5, 1.0, 3.0)]
        t = np.linspace(0.0, 20e-9, 32)
        grid = response_v(responses, t)
        for i, scalar in enumerate(responses):
            assert np.array_equal(
                grid[i], np.array([scalar(ti) for ti in t])), i

    def test_as_response_batch_rejects_junk(self):
        with pytest.raises(TypeError, match="expected"):
            as_response_batch(object())
        with pytest.raises(ParameterError, match="non-empty"):
            as_response_batch([])


class TestThresholdDelayBitwise:
    @pytest.mark.parametrize("f", [0.1, 0.5, 0.9])
    def test_batch_matches_scalar_shim(self, mixed_batch, f):
        stages, batch = mixed_batch
        solved = threshold_delay_v(batch, f)
        for i, stage in enumerate(stages):
            scalar = threshold_delay(stage, f, polish_with_newton=False)
            assert solved.tau[i] == scalar.tau, i
            assert solved.damping_values()[i] == scalar.damping, i

    def test_batch_agrees_with_brent_reference(self, mixed_batch):
        stages, batch = mixed_batch
        rtol = unit_tolerance("kernels.brent_vs_vector.rel")
        solved = threshold_delay_v(batch, 0.5)
        for i, stage in enumerate(stages):
            ref = brent_threshold_delay(stage, 0.5)
            assert solved.tau[i] == pytest.approx(ref.tau, rel=rtol), i

    def test_zero_threshold_lane_is_zero(self, mixed_batch):
        _, batch = mixed_batch
        f = np.full(len(batch), 0.5)
        f[1] = 0.0
        solved = threshold_delay_v(batch, f)
        assert solved.tau[1] == 0.0
        assert solved.newton_iterations[1] == 0
        assert np.all(solved.tau[f > 0.0] > 0.0)

    def test_per_lane_thresholds(self, mixed_batch):
        stages, batch = mixed_batch
        f = np.linspace(0.2, 0.8, len(batch))
        solved = threshold_delay_v(batch, f)
        for i, stage in enumerate(stages):
            scalar = threshold_delay(stage, f[i], polish_with_newton=False)
            assert solved.tau[i] == scalar.tau, i

    def test_invalid_threshold_names_lane(self, mixed_batch):
        _, batch = mixed_batch
        f = np.full(len(batch), 0.5)
        f[2] = 1.0
        with pytest.raises(ParameterError, match="lane 2"):
            threshold_delay_v(batch, f)

    def test_threshold_shape_mismatch_rejected(self, mixed_batch):
        _, batch = mixed_batch
        with pytest.raises(ParameterError, match="does not match"):
            threshold_delay_v(batch, np.array([0.5, 0.5]))

    def test_permutation_invariance(self, mixed_batch):
        stages, _ = mixed_batch
        order = np.arange(len(stages))[::-1]
        forward = threshold_delay_v(StageBatch.from_stages(stages), 0.5)
        shuffled = threshold_delay_v(
            StageBatch.from_stages([stages[i] for i in order]), 0.5)
        assert np.array_equal(forward.tau[order], shuffled.tau)

    def test_singleton_invariance(self, mixed_batch):
        stages, batch = mixed_batch
        full = threshold_delay_v(batch, 0.5)
        for i, stage in enumerate(stages):
            alone = threshold_delay_v(StageBatch.from_stages([stage]), 0.5)
            assert alone.tau[0] == full.tau[i], i


class TestCriticalInductance:
    def test_bitwise_vs_scalar(self, node, rc_opt):
        h = np.array([0.5, 1.0, 2.0]) * rc_opt.h_opt
        k = np.array([0.5, 1.0, 2.0]) * rc_opt.k_opt
        batch = StageBatch.from_arrays(
            r=node.line.r, l=0.0, c=node.line.c, r_s=node.driver.r_s,
            c_p=node.driver.c_p, c_0=node.driver.c_0, h=h, k=k)
        l_crit = critical_inductance_v(batch)
        for i in range(len(batch)):
            assert l_crit[i] == critical_inductance(batch.stage(i)), i


class TestBatchDelayJob:
    def test_round_trip(self, node, rc_opt):
        job = BatchDelayJob.from_inductance_sweep(
            node.line, node.driver, [0.0, 1e-7, 5e-7],
            h=rc_opt.h_opt, k=rc_opt.k_opt, f=0.4)
        assert job_from_dict(job_to_dict(job)) == job

    def test_matches_per_point_delay_jobs(self, node, rc_opt):
        l_values = [0.0, 1e-7, 1.0 * units.NH_PER_MM]
        batch = BatchDelayJob.from_inductance_sweep(
            node.line, node.driver, l_values,
            h=rc_opt.h_opt, k=rc_opt.k_opt)
        result = batch.run()
        for i, l in enumerate(l_values):
            scalar = DelayJob(line=node.line.with_inductance(l),
                              driver=node.driver, h=rc_opt.h_opt,
                              k=rc_opt.k_opt).run()
            assert result["tau"][i] == scalar["tau"], i
            assert result["damping"][i] == scalar["damping"], i
            assert result["newton_iterations"][i] == 0, i

    def test_cached_as_one_unit(self, node, rc_opt, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        executor = BatchExecutor(cache=cache)
        job = BatchDelayJob.from_inductance_sweep(
            node.line, node.driver, [0.0, 2e-7],
            h=rc_opt.h_opt, k=rc_opt.k_opt)
        first = executor.run([job])
        assert (cache.stats().hits, cache.stats().misses) == (0, 1)
        second = executor.run([job])
        assert cache.stats().hits == 1
        assert second.outcomes[0].result == first.outcomes[0].result

    def test_solver_failure_names_sweep_points(self, node, rc_opt,
                                               monkeypatch):
        import repro.core.kernels as kernels_mod

        def explode(batch, f):
            error = DelaySolverError("injected", iterations=7,
                                     residual=0.25)
            error.lanes = [1]
            raise error

        monkeypatch.setattr(kernels_mod, "threshold_delay_v", explode)
        job = BatchDelayJob.from_inductance_sweep(
            node.line, node.driver, [0.0, 3e-7],
            h=rc_opt.h_opt, k=rc_opt.k_opt)
        with pytest.raises(DelaySolverError,
                           match=r"point 1 \(l = 3e-07"):
            job.run()

    def test_mismatched_lengths_rejected(self, generic_line,
                                         generic_driver):
        with pytest.raises(ParameterError, match="disagree"):
            BatchDelayJob(driver=generic_driver, lines=(generic_line,),
                          h=(1e-3, 2e-3), k=(10.0,))

    def test_mixed_drivers_rejected(self, generic_line):
        stages = [Stage(line=generic_line,
                        driver=DriverParams(r_s=r_s, c_p=5e-15, c_0=1e-15),
                        h=1e-3, k=10.0)
                  for r_s in (1e4, 2e4)]
        with pytest.raises(ParameterError, match="one driver"):
            BatchDelayJob.from_stages(stages)
