"""Golden-fixture store tests: hashing, bless/diff round trips, staleness."""

import json

import pytest

from repro.verify import (DelayObservation, GoldenStore, VerifyCase,
                          case_for_regime, entry_key, evaluate)
from repro.verify.golden import DEFAULT_GOLDEN_PATH, golden_salt


@pytest.fixture
def case():
    return case_for_regime("250nm", "overdamped", 0.5)


@pytest.fixture
def store(tmp_path):
    return GoldenStore(tmp_path / "golden.json")


def _observe(case, oracle="two_pole"):
    return evaluate(case, oracle)


class TestEntryKey:
    def test_key_ignores_presentation_labels(self, case):
        renamed = VerifyCase(case_id="totally/renamed", line=case.line,
                             driver=case.driver, h=case.h, k=case.k,
                             f=case.f, regime="", node="")
        assert entry_key(case, "two_pole") == entry_key(renamed, "two_pole")

    def test_key_sensitive_to_physics_and_oracle(self, case):
        shifted = VerifyCase(case_id=case.case_id, line=case.line,
                             driver=case.driver, h=case.h * 1.0001,
                             k=case.k, f=case.f)
        assert entry_key(case, "two_pole") != entry_key(shifted, "two_pole")
        assert entry_key(case, "two_pole") != entry_key(case, "elmore")


class TestBlessDiffRoundTrip:
    def test_missing_store_diffs_as_missing(self, store, case):
        mismatches = store.diff([(case, _observe(case))])
        assert [m.kind for m in mismatches] == ["missing"]

    def test_bless_then_diff_clean(self, store, case):
        observation = _observe(case)
        assert store.bless([(case, observation)]) == 1
        assert store.diff([(case, observation)]) == []
        assert store.get(case, "two_pole") == observation

    def test_partial_bless_preserves_other_entries(self, store, case):
        other = case_for_regime("100nm", "underdamped", 0.9)
        store.bless([(case, _observe(case))])
        assert store.bless([(other, _observe(other))]) == 2
        assert store.get(case, "two_pole") is not None

    def test_any_float_drift_is_a_mismatch(self, store, case):
        observation = _observe(case)
        store.bless([(case, observation)])
        drifted = DelayObservation(
            oracle=observation.oracle,
            tau=observation.tau * (1.0 + 1e-15),
            threshold=observation.threshold, damping=observation.damping,
            extras=observation.extras)
        mismatches = store.diff([(case, drifted)])
        assert [m.kind for m in mismatches] == ["changed"]

    def test_schema_salt_change_invalidates_everything(self, store, case,
                                                       monkeypatch):
        store.bless([(case, _observe(case))])
        monkeypatch.setattr("repro.verify.golden.GOLDEN_SCHEMA_VERSION", 2)
        assert store.load() == {}
        assert store.get(case, "two_pole") is None


class TestCommittedStore:
    """The fixtures committed to the repo must be live and loadable."""

    def test_default_store_exists_with_current_salt(self):
        with open(DEFAULT_GOLDEN_PATH, encoding="utf-8") as handle:
            data = json.load(handle)
        assert data["salt"] == golden_salt()
        # 36 cases x 6 oracles, minus 24 ismail_friedman domain skips.
        assert len(data["entries"]) == 192

    def test_committed_fixture_matches_fresh_evaluation(self, case):
        # Spot check one cheap oracle: a fresh evaluation must agree
        # bitwise with the committed fixture (full coverage is the CI
        # `repro-verify diff` job).
        store = GoldenStore()
        stored = store.get(case, "two_pole")
        assert stored is not None
        assert store.diff([(case, _observe(case))]) == []

    def test_b2_sign_flip_caught_by_golden(self, case):
        from unittest import mock

        import repro.core.moments as moments_mod
        from tests.test_verify_differential import _b2_sign_flipped

        perturbed = _b2_sign_flipped(moments_mod.moments_terms)
        with mock.patch.object(moments_mod, "moments_terms", perturbed):
            fresh = _observe(case)
        mismatches = GoldenStore().diff([(case, fresh)])
        assert [m.kind for m in mismatches] == ["changed"]
