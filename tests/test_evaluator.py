"""Tests for the kernel-backed optimizer stack (repro.core.evaluate).

The refactor's contract is *bitwise* reproduction of the scalar
optimizer: the golden table below was produced by the pre-refactor
scalar Newton loop and every (h_opt, k_opt, tau, iterations) tuple must
keep matching to the last bit.  The rest of the suite covers the
StageEvaluator memo, trace recording/serialization, the batch job, and
the accepted-worse backtracking diagnostics.
"""

import math

import numpy as np
import pytest

from repro import units
from repro.core.evaluate import (OptimizationTrace, ScalarSemantics,
                                 StageEvaluator, TraceStep,
                                 delay_per_length_grid, prime_evaluators,
                                 stationarity_residuals_v)
from repro.core.optimize import (OptimizerMethod, _fail, optimize_repeater,
                                 optimize_repeater_many,
                                 stationarity_residuals)
from repro.core.params import DriverParams, LineParams, Stage
from repro.core.delay import threshold_delay
from repro.core.sweep import sweep_inductance
from repro.engine import BatchOptimizeJob, OptimizeJob
from repro.errors import OptimizationError, ParameterError
from repro.tech.node import NODE_100NM, NODE_250NM

NODES = {"100nm": NODE_100NM, "250nm": NODE_250NM}

#: (node, l in nH/mm) -> (h_opt, k_opt, tau, iterations), recorded from
#: the pre-refactor scalar optimizer at default settings (f=0.5, AUTO).
GOLDEN_OPTIMA = [
    ("100nm", 0.0, 0.01054060690339285, 455.99497306587915,
     8.064759101887666e-11, 5),
    ("100nm", 0.5, 0.012460551268388794, 324.23337704734064,
     1.330068594853504e-10, 6),
    ("100nm", 1.0, 0.013637756910716088, 282.5833723659545,
     1.752867391695472e-10, 6),
    ("100nm", 2.0, 0.015161538516928785, 244.51910293249372,
     2.449314134416896e-10, 7),
    ("100nm", 5.0, 0.01769260295217451, 202.02013158203033,
     4.061259005863739e-10, 7),
    ("250nm", 0.0, 0.013685252811351793, 505.20625473760936,
     2.3080101131751585e-10, 5),
    ("250nm", 0.5, 0.01481829367086997, 425.2469149042504,
     2.8902161890686694e-10, 5),
    ("250nm", 1.0, 0.015762286520125277, 382.67083791284347,
     3.433837395714662e-10, 6),
    ("250nm", 2.0, 0.017173092550920015, 336.39445670577146,
     4.3898132566033567e-10, 6),
    ("250nm", 5.0, 0.019781140740072964, 279.0657528012805,
     6.699375984761573e-10, 7),
]


def _line_at(node, l_nh):
    return LineParams(r=node.line.r, l=l_nh * units.NH_PER_MM,
                      c=node.line.c)


class TestGoldenBitwise:
    @pytest.mark.parametrize("node_name,l_nh,h_g,k_g,tau_g,it_g",
                             GOLDEN_OPTIMA)
    def test_optimum_matches_scalar_golden(self, node_name, l_nh, h_g, k_g,
                                           tau_g, it_g):
        node = NODES[node_name]
        optimum = optimize_repeater(_line_at(node, l_nh), node.driver)
        assert float(optimum.h_opt) == h_g
        assert float(optimum.k_opt) == k_g
        assert float(optimum.tau) == tau_g
        assert optimum.iterations == it_g
        assert optimum.method is OptimizerMethod.NEWTON

    def test_residuals_match_scalar_reference(self):
        node = NODE_100NM
        line = _line_at(node, 1.0)
        h, k = 0.012, 300.0
        g1, g2, tau = stationarity_residuals(line, node.driver, h, k, 0.5)
        evaluator = StageEvaluator(line, node.driver, 0.5)
        g1_b, g2_b, tau_b, _ = evaluator.evaluate(h, k)
        assert g1_b == g1
        assert g2_b == g2
        assert tau_b == tau

    def test_delay_matches_threshold_delay(self):
        node = NODE_250NM
        line = _line_at(node, 2.0)
        evaluator = StageEvaluator(line, node.driver, 0.5)
        stage = Stage(line=line, driver=node.driver, h=0.015, k=350.0)
        scalar = threshold_delay(stage, 0.5, polish_with_newton=False).tau
        assert evaluator.delay(0.015, 350.0) == scalar

    def test_delay_per_length_grid_matches_scalar_loop(self):
        node = NODE_100NM
        grid = np.linspace(0.0, 5.0, 7) * units.NH_PER_MM
        h, k = 0.014, 280.0
        values = delay_per_length_grid(node.line, node.driver, grid, h, k)
        for i, l in enumerate(grid):
            stage = Stage(line=node.line.with_inductance(float(l)),
                          driver=node.driver, h=h, k=k)
            expected = threshold_delay(stage, 0.5,
                                       polish_with_newton=False).tau / h
            assert values[i] == expected, i


class TestStageEvaluator:
    def test_memoization_counts(self):
        node = NODE_100NM
        evaluator = StageEvaluator(_line_at(node, 1.0), node.driver, 0.5)
        first = evaluator.evaluate(0.012, 300.0)
        assert evaluator.lanes_evaluated == 1
        assert evaluator.batch_calls == 1
        assert evaluator.memo_hits == 0
        second = evaluator.evaluate(0.012, 300.0)
        assert second == first
        assert evaluator.lanes_evaluated == 1
        assert evaluator.memo_hits == 1

    def test_evaluate_many_dedups_within_call(self):
        node = NODE_100NM
        evaluator = StageEvaluator(_line_at(node, 1.0), node.driver, 0.5)
        results = evaluator.evaluate_many(
            [(0.012, 300.0), (0.013, 280.0), (0.012, 300.0)])
        assert results[0] == results[2]
        assert evaluator.lanes_evaluated == 2
        assert evaluator.batch_calls == 1
        assert len(evaluator) == 2

    def test_three_lane_batch_matches_scalar_lanes(self):
        node = NODE_250NM
        line = _line_at(node, 1.0)
        evaluator = StageEvaluator(line, node.driver, 0.5)
        h, k = 0.015, 380.0
        pairs = [(h, k), (h * (1 + 1e-6), k), (h, k * (1 + 1e-6))]
        batched = evaluator.evaluate_many(pairs)
        for (hp, kp), got in zip(pairs, batched):
            g1, g2, tau = stationarity_residuals(line, node.driver, hp, kp,
                                                 0.5)
            assert got[:3] == (g1, g2, tau)

    def test_invalid_lane_reports_lane_index(self):
        node = NODE_100NM
        evaluator = StageEvaluator(_line_at(node, 0.0), node.driver, 0.5)
        with pytest.raises(ParameterError, match="lane"):
            evaluator.evaluate_many([(0.012, 300.0), (-0.01, 300.0)])

    def test_semantics_split_memo_keys(self):
        sem_f = ScalarSemantics.for_values(
            LineParams(r=25e3, l=1e-6, c=1.5e-10),
            DriverParams(r_s=30e3, c_p=1e-14, c_0=1e-15),
            [0.01], [100.0])
        assert not sem_f.numpy_b1 and not sem_f.numpy_db2
        sem_h = ScalarSemantics.for_values(
            LineParams(r=25e3, l=1e-6, c=1.5e-10),
            DriverParams(r_s=30e3, c_p=1e-14, c_0=1e-15),
            [np.float64(0.01)], [100.0])
        assert sem_h.numpy_b1 and sem_h.numpy_db2
        sem_l = ScalarSemantics.for_values(
            LineParams(r=25e3, l=np.float64(1e-6), c=1.5e-10),
            DriverParams(r_s=30e3, c_p=1e-14, c_0=1e-15),
            [0.01], [100.0])
        assert not sem_l.numpy_b1 and sem_l.numpy_db2

    def test_prime_evaluators_warm_starts_memo(self):
        node = NODE_100NM
        lines = [_line_at(node, l) for l in (0.0, 1.0, 2.0)]
        evaluators = [StageEvaluator(line, node.driver, 0.5)
                      for line in lines]
        seeds = [(0.012, 300.0)] * 3
        primed = prime_evaluators(evaluators, seeds)
        assert primed == 3
        for evaluator, line in zip(evaluators, lines):
            assert evaluator.lanes_evaluated == 1
            evaluator.evaluate(0.012, 300.0)
            assert evaluator.memo_hits == 1
            g1, g2, tau = stationarity_residuals(line, node.driver, 0.012,
                                                 300.0, 0.5)
            assert evaluator.evaluate(0.012, 300.0)[:3] == (g1, g2, tau)

    def test_batched_residuals_lane_values(self):
        node = NODE_100NM
        line = _line_at(node, 1.0)
        sem = ScalarSemantics(numpy_b1=False, numpy_db2=False)
        g1, g2, tau, codes = stationarity_residuals_v(
            [line.r] * 2, [line.l] * 2, [line.c] * 2,
            [node.driver.r_s] * 2, [node.driver.c_p] * 2,
            [node.driver.c_0] * 2,
            [0.012, 0.014], [300.0, 260.0], 0.5, semantics=sem)
        for i, (h, k) in enumerate([(0.012, 300.0), (0.014, 260.0)]):
            g1_s, g2_s, tau_s = stationarity_residuals(line, node.driver,
                                                       h, k, 0.5)
            assert g1[i] == g1_s and g2[i] == g2_s and tau[i] == tau_s


class TestOptimizationTrace:
    def test_newton_trace_shape(self):
        node = NODE_100NM
        optimum = optimize_repeater(_line_at(node, 1.0), node.driver)
        trace = optimum.trace
        assert trace is not None
        # seed step + one step per Newton iteration
        assert len(trace.steps) == optimum.iterations + 1
        assert [s.iteration for s in trace.steps] == \
            list(range(optimum.iterations + 1))
        assert trace.steps[0].step_scale is None
        assert all(s.step_scale is not None for s in trace.steps[1:])
        assert not trace.fallback
        assert trace.lanes_evaluated > 0
        assert trace.batch_calls > 0
        assert trace.memo_hits >= optimum.iterations
        # residual norm matches the recorded residuals
        for step in trace.steps:
            assert step.residual_norm == math.hypot(step.g1, step.g2)
        # converged: last residual far below the first
        assert trace.steps[-1].residual_norm < trace.steps[0].residual_norm

    def test_payload_round_trip(self):
        node = NODE_250NM
        optimum = optimize_repeater(_line_at(node, 2.0), node.driver)
        payload = optimum.trace.to_payload()
        clone = OptimizationTrace.from_payload(payload)
        assert clone.to_payload() == payload
        assert len(clone.steps) == len(optimum.trace.steps)
        assert clone.lanes_evaluated == optimum.trace.lanes_evaluated
        assert clone.steps[1].h == float(optimum.trace.steps[1].h)
        summary = optimum.trace.summary()
        assert summary["steps"] == len(optimum.trace.steps)
        assert summary["fallback"] is False

    def test_direct_method_records_fallback_free_trace(self):
        node = NODE_100NM
        optimum = optimize_repeater(_line_at(node, 1.0), node.driver,
                                    method=OptimizerMethod.DIRECT)
        trace = optimum.trace
        assert optimum.method is OptimizerMethod.DIRECT
        assert not trace.fallback          # DIRECT by request, not fallback
        assert any(e.kind == "direct" for e in trace.events)
        assert optimum.iterations > 0      # satellite: nit read consistently

    def test_accepted_worse_surfaces_in_error(self):
        trace = OptimizationTrace()
        trace.record_step(TraceStep(
            iteration=0, h=0.01, k=100.0, g1=1.0, g2=1.0, tau=1e-10,
            residual_norm=math.hypot(1.0, 1.0), damping="overdamped",
            step_scale=None, backtracks=0, accepted_worse=False))
        trace.record_step(TraceStep(
            iteration=1, h=0.011, k=101.0, g1=2.0, g2=2.0, tau=1e-10,
            residual_norm=math.hypot(2.0, 2.0), damping="overdamped",
            step_scale=0.0005, backtracks=11, accepted_worse=True))
        assert trace.accepted_worse_total == 1
        error = _fail("Newton optimizer did not converge in 200 iterations",
                      iteration=1, norm=trace.steps[-1].residual_norm,
                      trace=trace)
        assert "accepted 1 worse iterate" in str(error)
        assert error.accepted_worse == 1
        assert error.trace is trace
        assert trace.events[-1].kind == "newton_error"


class TestSweepTraces:
    def test_sweep_aggregates_methods_and_traces(self):
        node = NODE_100NM
        l_values = np.linspace(0.0, 2.0, 3) * units.NH_PER_MM
        sweep = sweep_inductance(node.line, node.driver, l_values)
        assert sweep.methods == ("newton",) * 3
        assert len(sweep.traces) == 3
        assert all(t["steps"] for t in sweep.traces)
        assert sweep.fallback_points == []
        report = sweep.fallback_report()
        assert "all 3 points converged via newton" in report
        assert "total backtracking steps" in report


class TestEngineJobs:
    def test_optimize_job_serializes_trace(self, tmp_path):
        node = NODE_100NM
        job = OptimizeJob(line=_line_at(node, 1.0), driver=node.driver)
        result = job.run()
        trace = result["trace"]
        assert trace is not None
        assert len(trace["steps"]) == result["iterations"] + 1
        assert not any(e["kind"] == "fallback" for e in trace["events"])
        # payload survives the cache's JSON round-trip
        from repro.engine import ResultCache
        cache = ResultCache(tmp_path)
        cache.put(job, result)
        assert cache.get(job)["trace"] == \
            OptimizationTrace.from_payload(trace).to_payload()

    def test_batch_job_matches_individual_jobs_bitwise(self):
        node = NODE_100NM
        l_grid = [0.0, 1.0, 2.0]
        lines = tuple(_line_at(node, l) for l in l_grid)
        batch = BatchOptimizeJob(driver=node.driver, lines=lines).run()
        assert batch["n"] == 3
        assert batch["errors"] == []
        assert batch["seeds_primed"] == 3
        for lane, line in enumerate(lines):
            single = OptimizeJob(line=line, driver=node.driver).run()
            got = batch["results"][lane]
            assert got["h_opt"] == single["h_opt"]
            assert got["k_opt"] == single["k_opt"]
            assert got["tau"] == single["tau"]
            assert got["iterations"] == single["iterations"]
        delays = [r["delay_per_length"] for r in batch["results"]]
        assert batch["best_index"] == delays.index(min(delays))

    def test_batch_job_from_constructors_round_trip(self):
        from repro.engine import job_from_dict, job_to_dict
        node = NODE_100NM
        job = BatchOptimizeJob.from_multistart(
            _line_at(node, 1.0), node.driver,
            seeds=[(0.01, 300.0), (0.02, 200.0)])
        assert len(job) == 2
        clone = job_from_dict(job_to_dict(job))
        assert clone == job
        grid_job = BatchOptimizeJob.from_inductance_grid(
            node.line, node.driver,
            [0.0, 1e-6])
        assert len(grid_job) == 2
        assert grid_job.lines[1].l == 1e-6

    def test_batch_job_isolates_bad_lane(self):
        node = NODE_100NM
        lines = (_line_at(node, 1.0), _line_at(node, 0.0))
        job = BatchOptimizeJob(
            driver=node.driver, lines=lines,
            initials=((0.012, 300.0), (-1.0, 300.0)),
            retry_reseed=False)
        result = job.run()
        assert len(result["results"]) == 2
        assert result["results"][1] is None
        assert result["errors"][0]["lane"] == 1
        assert result["best_index"] == 0

    def test_batch_job_validates_lengths(self):
        node = NODE_100NM
        with pytest.raises(ParameterError, match="at least one"):
            BatchOptimizeJob(driver=node.driver, lines=())
        with pytest.raises(ParameterError, match="disagree"):
            BatchOptimizeJob(driver=node.driver,
                             lines=(_line_at(node, 1.0),),
                             initials=((0.01, 100.0), (0.02, 200.0)))


class TestMetrics:
    def test_trace_counts_flow_into_batch_metrics(self):
        from repro.engine.metrics import BatchMetrics, JobMetrics, \
            trace_counts_of
        node = NODE_100NM
        result = OptimizeJob(line=_line_at(node, 1.0),
                             driver=node.driver).run()
        fallbacks, backtracks = trace_counts_of(result)
        assert fallbacks == 0
        assert backtracks >= 0
        metrics = BatchMetrics()
        metrics.record(JobMetrics(kind="optimize", wall_time=0.1,
                                  from_cache=False, failed=False,
                                  newton_iterations=6, retried=False,
                                  fallbacks=fallbacks,
                                  backtracks=backtracks))
        summary = metrics.format_summary()
        assert "direct fallbacks" in summary
        assert "backtracking steps" in summary


class TestLockstep:
    """optimize_repeater_many: pooled Newton, per-lane solo semantics."""

    def test_lockstep_matches_solo_bitwise_with_traces(self):
        node = NODE_100NM
        lines = [_line_at(node, l) for l in (0.0, 0.5, 1.0, 2.0, 5.0)]
        outcomes = optimize_repeater_many(lines, node.driver)
        for i, line in enumerate(lines):
            solo = optimize_repeater(line, node.driver)
            got = outcomes[i]
            assert float(got.h_opt) == float(solo.h_opt)
            assert float(got.k_opt) == float(solo.k_opt)
            assert float(got.tau) == float(solo.tau)
            assert got.iterations == solo.iterations
            assert got.method is solo.method
            # Raw np iterates survive the lockstep path too (warm-start
            # chains depend on them ulp-for-ulp).
            assert type(got.h_opt) is type(solo.h_opt)
            assert len(got.trace.steps) == len(solo.trace.steps)
            for a, b in zip(got.trace.steps, solo.trace.steps):
                assert (a.h, a.k, a.g1, a.g2, a.tau, a.residual_norm,
                        a.step_scale, a.backtracks) == \
                       (b.h, b.k, b.g1, b.g2, b.tau, b.residual_norm,
                        b.step_scale, b.backtracks)

    def test_lockstep_pools_kernel_batches(self, monkeypatch):
        import repro.core.evaluate as evaluate_mod

        node = NODE_100NM
        lines = [_line_at(node, l) for l in (0.0, 1.0, 2.0, 5.0)]
        real = evaluate_mod.stationarity_residuals_v
        dispatches = []

        def counting(*args, **kwargs):
            dispatches.append(1)
            return real(*args, **kwargs)

        monkeypatch.setattr(evaluate_mod, "stationarity_residuals_v",
                            counting)
        optimize_repeater_many(lines, node.driver)
        pooled = len(dispatches)
        dispatches.clear()
        for line in lines:
            optimize_repeater(line, node.driver)
        solo = len(dispatches)
        # Same lanes of work, strictly fewer kernel dispatches: the
        # pooled batches replace most per-lane evaluate calls.
        assert 0 < pooled < solo

    def test_lockstep_isolates_per_lane_failures(self):
        node = NODE_100NM
        lines = [_line_at(node, 1.0), _line_at(node, 2.0)]
        outcomes = optimize_repeater_many(
            lines, node.driver, initials=[(-1.0, 100.0), None])
        assert isinstance(outcomes[0], ParameterError)
        assert "must be positive" in str(outcomes[0])
        solo = optimize_repeater(lines[1], node.driver)
        assert float(outcomes[1].h_opt) == float(solo.h_opt)

    def test_lockstep_bad_threshold_fails_every_lane(self):
        node = NODE_100NM
        outcomes = optimize_repeater_many(
            [_line_at(node, 1.0)] * 3, node.driver, f=1.5)
        assert len(outcomes) == 3
        assert all(isinstance(o, ParameterError) for o in outcomes)

    def test_lockstep_direct_method_runs_solo_lanes(self):
        node = NODE_100NM
        lines = [_line_at(node, 1.0), _line_at(node, 2.0)]
        outcomes = optimize_repeater_many(
            lines, node.driver, method=OptimizerMethod.DIRECT)
        for outcome, line in zip(outcomes, lines):
            solo = optimize_repeater(line, node.driver,
                                     method=OptimizerMethod.DIRECT)
            assert outcome.method is OptimizerMethod.DIRECT
            assert float(outcome.h_opt) == float(solo.h_opt)
            assert float(outcome.tau) == float(solo.tau)
