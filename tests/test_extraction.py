"""Unit tests for the parasitic-extraction substitutes."""

import math

import pytest

from repro import units
from repro.errors import ExtractionError
from repro.extraction import (COPPER_RESISTIVITY, Wire, capacitance_range,
                              inductance_range, loop_inductance_over_plane,
                              loop_inductance_with_return_wire,
                              parallel_plate, partial_mutual_inductance,
                              partial_self_inductance,
                              partial_self_inductance_per_length,
                              sakurai_coupling, sakurai_tamaru_ground,
                              total_capacitance, wire_from_tech)
from repro.tech import NODE_100NM, NODE_250NM


def table1_wire(node=NODE_250NM, length=10e-3):
    return wire_from_tech(node.geometry, length=length)


class TestWireGeometry:
    def test_derived_quantities(self):
        wire = Wire(width=2e-6, thickness=2.5e-6, height=14e-6,
                    spacing=2e-6, length=1e-2)
        assert wire.aspect_ratio == pytest.approx(1.25)
        assert wire.cross_section == pytest.approx(5e-12)
        assert wire.geometric_mean_radius == pytest.approx(0.2235 * 4.5e-6)

    def test_resistance_matches_table1(self):
        wire = table1_wire()
        r = wire.resistance_per_length(COPPER_RESISTIVITY)
        assert units.to_ohm_per_mm(r) == pytest.approx(4.4, rel=1e-6)

    def test_validation(self):
        with pytest.raises(ExtractionError):
            Wire(width=0.0, thickness=1e-6, height=1e-6)
        with pytest.raises(ExtractionError):
            Wire(width=1e-6, thickness=1e-6, height=1e-6, spacing=-1.0)
        wire = Wire(width=2e-6, thickness=2.5e-6, height=14e-6)
        with pytest.raises(ExtractionError):
            wire.resistance_per_length(0.0)

    def test_wire_from_tech_adapts_fields(self):
        wire = wire_from_tech(NODE_100NM.geometry, length=5e-3)
        assert wire.width == NODE_100NM.geometry.width
        assert wire.thickness == NODE_100NM.geometry.height
        assert wire.height == NODE_100NM.geometry.t_ins
        assert wire.spacing == NODE_100NM.geometry.spacing
        assert wire.length == 5e-3


class TestCapacitance:
    def test_parallel_plate_formula(self):
        wire = Wire(width=2e-6, thickness=2.5e-6, height=10e-6)
        expected = units.EPSILON_0 * 3.0 * 2e-6 / 10e-6
        assert parallel_plate(wire, 3.0) == pytest.approx(expected)

    def test_sakurai_exceeds_parallel_plate(self):
        """Fringing always adds capacitance over the plate term."""
        wire = table1_wire()
        eps = 3.3
        assert sakurai_tamaru_ground(wire, eps) > parallel_plate(wire, eps)

    def test_coupling_zero_for_isolated_wire(self):
        wire = Wire(width=2e-6, thickness=2.5e-6, height=14e-6,
                    spacing=math.inf)
        assert sakurai_coupling(wire, 3.3) == 0.0

    def test_coupling_decreases_with_spacing(self):
        def coupling(spacing):
            wire = Wire(width=2e-6, thickness=2.5e-6, height=14e-6,
                        spacing=spacing)
            return sakurai_coupling(wire, 3.3)

        assert coupling(1e-6) > coupling(2e-6) > coupling(4e-6)

    @pytest.mark.parametrize("node,expected_pf_per_m", [
        (NODE_250NM, 203.5), (NODE_100NM, 123.33),
    ], ids=["250nm", "100nm"])
    def test_reproduces_table1_within_ten_percent(self, node,
                                                  expected_pf_per_m):
        """The FASTCAP substitute lands close to the paper's extracted c."""
        wire = wire_from_tech(node.geometry)
        breakdown = total_capacitance(wire, node.epsilon_r)
        measured = units.to_pf_per_m(breakdown.total)
        assert measured == pytest.approx(expected_pf_per_m, rel=0.10)

    def test_miller_range_spans_the_quiet_value(self):
        wire = table1_wire()
        low, high = capacitance_range(wire, 3.3)
        quiet = total_capacitance(wire, 3.3).total
        assert low < quiet < high

    def test_miller_variation_substantial(self):
        """Paper Sec. 3: effective c can vary by a large factor (up to ~4x
        for very tight pitches); Table 1 geometry gives > 2x."""
        wire = table1_wire()
        low, high = capacitance_range(wire, 3.3)
        assert high / low > 2.0

    def test_validation(self):
        wire = table1_wire()
        with pytest.raises(ExtractionError):
            total_capacitance(wire, 0.5)
        with pytest.raises(ExtractionError):
            total_capacitance(wire, 3.3, neighbours=-1)
        with pytest.raises(ExtractionError):
            total_capacitance(wire, 3.3, miller_factor=-0.5)
        with pytest.raises(ExtractionError):
            total_capacitance(wire, 3.3, plane_mirror_factor=0.0)


class TestInductance:
    def test_partial_self_grows_logarithmically(self):
        per_length = [partial_self_inductance_per_length(table1_wire(
            length=l)) for l in (1e-3, 1e-2, 1e-1)]
        assert per_length[0] < per_length[1] < per_length[2]
        # Log growth: increments roughly equal for decade steps.
        inc1 = per_length[1] - per_length[0]
        inc2 = per_length[2] - per_length[1]
        assert inc2 == pytest.approx(inc1, rel=0.15)

    def test_partial_self_positive_and_nh_scale(self):
        value = partial_self_inductance_per_length(table1_wire())
        nh_per_mm = units.to_nh_per_mm(value)
        assert 0.5 < nh_per_mm < 3.0

    def test_mutual_less_than_self(self):
        wire = table1_wire()
        self_l = partial_self_inductance(wire)
        mutual = partial_mutual_inductance(wire.length, 4e-6)
        assert 0.0 < mutual < self_l

    def test_mutual_decreases_with_pitch(self):
        length = 10e-3
        assert partial_mutual_inductance(length, 4e-6) > \
            partial_mutual_inductance(length, 40e-6)

    def test_loop_over_plane_grows_with_distance(self):
        wire = table1_wire()
        near = loop_inductance_over_plane(wire, plane_distance=5e-6)
        far = loop_inductance_over_plane(wire, plane_distance=50e-6)
        assert far > near

    def test_loop_with_return_wire_grows_with_pitch(self):
        wire = table1_wire()
        assert loop_inductance_with_return_wire(wire, 100e-6) > \
            loop_inductance_with_return_wire(wire, 10e-6)

    def test_range_below_paper_bound(self):
        """Best..worst effective l stays under the paper's 5 nH/mm."""
        best, worst = inductance_range(table1_wire())
        assert 0.0 < best < worst
        assert units.to_nh_per_mm(worst) < 5.0

    def test_validation(self):
        wire = table1_wire()
        with pytest.raises(ExtractionError):
            partial_mutual_inductance(-1.0, 1e-6)
        with pytest.raises(ExtractionError):
            partial_mutual_inductance(1e-3, 2e-3)   # pitch > length
        with pytest.raises(ExtractionError):
            loop_inductance_over_plane(wire, plane_distance=1e-9)
        short = Wire(width=2e-6, thickness=2.5e-6, height=14e-6,
                     length=3e-6)
        with pytest.raises(ExtractionError):
            partial_self_inductance(short)
