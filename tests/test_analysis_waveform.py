"""Unit tests for the waveform measurement utilities."""

import math

import numpy as np
import pytest

from repro.analysis import Waveform
from repro.errors import ParameterError


def make_sine(frequency=1e9, amplitude=1.0, offset=0.0, cycles=10.0,
              samples_per_cycle=200):
    period = 1.0 / frequency
    t = np.linspace(0.0, cycles * period,
                    int(cycles * samples_per_cycle) + 1)
    return Waveform(t, offset + amplitude * np.sin(2 * np.pi * frequency * t))


class TestConstruction:
    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ParameterError):
            Waveform(np.array([0.0, 1.0]), np.array([0.0]))

    def test_rejects_non_monotonic_time(self):
        with pytest.raises(ParameterError):
            Waveform(np.array([0.0, 1.0, 1.0]), np.zeros(3))

    def test_rejects_single_sample(self):
        with pytest.raises(ParameterError):
            Waveform(np.array([0.0]), np.array([1.0]))


class TestInterpolation:
    def test_value_at_interpolates(self):
        waveform = Waveform(np.array([0.0, 1.0]), np.array([0.0, 2.0]))
        assert waveform.value_at(0.25) == pytest.approx(0.5)

    def test_slice_bounds(self):
        waveform = make_sine()
        sliced = waveform.slice(2e-9, 4e-9)
        assert sliced.time[0] >= 2e-9
        assert sliced.time[-1] <= 4e-9
        with pytest.raises(ParameterError):
            waveform.slice(3e-9, 3e-9)

    def test_slice_needs_two_samples(self):
        waveform = make_sine()
        with pytest.raises(ParameterError):
            waveform.slice(1e-20, 2e-20)


class TestCrossings:
    def test_rising_crossings_of_sine(self):
        waveform = make_sine(frequency=1e9, cycles=3.25)
        crossings = waveform.rising_crossings(0.0)
        # sin starts at 0 going up; upward zero crossings at t = 1, 2, 3 ns
        # (the t = 0 start is not itself a crossing).
        assert crossings.size == 3
        assert crossings[0] == pytest.approx(1e-9, rel=1e-3)
        assert crossings[1] == pytest.approx(2e-9, rel=1e-3)
        assert crossings[2] == pytest.approx(3e-9, rel=1e-3)

    def test_falling_crossings_of_sine(self):
        waveform = make_sine(frequency=1e9, cycles=3.0)
        crossings = waveform.falling_crossings(0.0)
        assert crossings[0] == pytest.approx(0.5e-9, rel=1e-3)

    def test_interpolated_crossing_subsample_accuracy(self):
        t = np.array([0.0, 1.0, 2.0])
        waveform = Waveform(t, np.array([0.0, 0.4, 1.2]))
        crossing = waveform.rising_crossings(1.0)
        assert crossing[0] == pytest.approx(1.75)

    def test_first_crossing_raises_when_absent(self):
        waveform = make_sine(amplitude=0.5)
        with pytest.raises(ParameterError):
            waveform.first_crossing(2.0)

    def test_delay_between_waveforms(self):
        a = make_sine()
        shift = 0.2e-9
        b = Waveform(a.time + shift, a.values)
        # First rising crossing of 0.5 amplitude level:
        assert a.delay_to(b, 0.5) == pytest.approx(shift, rel=1e-6)


class TestMetrics:
    def test_overshoot_and_undershoot(self):
        waveform = make_sine(amplitude=1.0, offset=0.5)
        assert waveform.overshoot(1.0) == pytest.approx(0.5, rel=1e-3)
        assert waveform.undershoot(0.0) == pytest.approx(0.5, rel=1e-3)

    def test_no_overshoot_returns_zero(self):
        waveform = make_sine(amplitude=0.3, offset=0.5)
        assert waveform.overshoot(1.0) == 0.0
        assert waveform.undershoot(0.0) == 0.0

    def test_rms_of_sine(self):
        waveform = make_sine(amplitude=2.0, cycles=20.0)
        assert waveform.rms() == pytest.approx(2.0 / math.sqrt(2.0), rel=1e-3)

    def test_rms_of_dc(self):
        waveform = Waveform(np.linspace(0, 1, 10), np.full(10, 3.0))
        assert waveform.rms() == pytest.approx(3.0)

    def test_average_of_offset_sine(self):
        waveform = make_sine(amplitude=1.0, offset=0.7, cycles=20.0)
        assert waveform.average() == pytest.approx(0.7, abs=1e-3)

    def test_peak_absolute(self):
        waveform = Waveform(np.linspace(0, 1, 5),
                            np.array([0.0, -3.0, 1.0, 2.0, 0.0]))
        assert waveform.peak() == 3.0


class TestOscillation:
    def test_period_of_sine(self):
        waveform = make_sine(frequency=2e9, cycles=12.0)
        assert waveform.oscillation_period(0.0) == pytest.approx(0.5e-9,
                                                                 rel=1e-3)

    def test_frequency_inverse(self):
        waveform = make_sine(frequency=2e9, cycles=12.0)
        assert waveform.oscillation_frequency(0.0) == pytest.approx(2e9,
                                                                    rel=1e-3)

    def test_raises_for_non_oscillating(self):
        t = np.linspace(0, 1e-9, 100)
        waveform = Waveform(t, np.linspace(0, 1, 100))
        with pytest.raises(ParameterError):
            waveform.oscillation_period(0.5)

    def test_median_robust_to_startup(self):
        """A distorted first cycle must not bias the measured period."""
        frequency = 1e9
        period = 1.0 / frequency
        t = np.linspace(0.0, 10 * period, 4001)
        values = np.sin(2 * np.pi * frequency * t)
        values[t < period] *= 0.2      # squash the first cycle
        waveform = Waveform(t, values)
        assert waveform.oscillation_period(0.0, skip=2) == pytest.approx(
            period, rel=1e-3)
