"""Unit tests for the square-law MOSFET model."""

import numpy as np
import pytest

from repro.circuits.mosfet import Mosfet, _square_law, _symmetric_square_law
from repro.errors import ParameterError


def nmos(beta=1e-4, vth=0.3, lam=0.05):
    return Mosfet(name="M", drain="d", gate="g", source="s",
                  polarity=1, vth=vth, beta=beta, lam=lam)


def pmos(beta=1e-4, vth=0.3, lam=0.05):
    return Mosfet(name="M", drain="d", gate="g", source="s",
                  polarity=-1, vth=vth, beta=beta, lam=lam)


class TestSquareLaw:
    def test_cutoff(self):
        current, gm, gds = _square_law(0.2, 1.0, 0.3, 1e-4, 0.05)
        assert current == gm == gds == 0.0

    def test_saturation_current(self):
        beta, vth = 1e-4, 0.3
        current, gm, _ = _square_law(1.2, 1.2, vth, beta, 0.0)
        vov = 1.2 - vth
        assert current == pytest.approx(0.5 * beta * vov * vov)
        assert gm == pytest.approx(beta * vov)

    def test_triode_current(self):
        beta, vth = 1e-4, 0.3
        vgs, vds = 1.2, 0.2
        current, _, gds = _square_law(vgs, vds, vth, beta, 0.0)
        vov = vgs - vth
        assert current == pytest.approx(beta * (vov * vds - 0.5 * vds ** 2))
        assert gds == pytest.approx(beta * (vov - vds))

    def test_continuity_at_saturation_boundary(self):
        beta, vth, lam = 1e-4, 0.3, 0.05
        vgs = 1.0
        vov = vgs - vth
        below = _square_law(vgs, vov - 1e-9, vth, beta, lam)
        above = _square_law(vgs, vov + 1e-9, vth, beta, lam)
        assert below[0] == pytest.approx(above[0], rel=1e-6)
        assert below[1] == pytest.approx(above[1], rel=1e-6)
        assert below[2] == pytest.approx(above[2], rel=1e-3)

    def test_positive_output_conductance_with_clm(self):
        _, _, gds = _square_law(1.2, 1.5, 0.3, 1e-4, 0.05)
        assert gds > 0.0


class TestSymmetry:
    def test_odd_symmetry_in_vds(self):
        """Swapping drain/source mirrors the current: I(vgs,vds) relates to
        the swapped device; at vgs large and small |vds| the conduction is
        nearly ohmic and antisymmetric."""
        beta, vth, lam = 1e-4, 0.6, 0.0
        forward, _, _ = _symmetric_square_law(1.2, 0.05, vth, beta, lam)
        reverse, _, _ = _symmetric_square_law(1.2, -0.05, vth, beta, lam)
        assert reverse == pytest.approx(-forward, rel=0.15)

    def test_reverse_conduction_active(self):
        """With vds < 0 the device still conducts (body of the undershoot
        mechanism: output below ground turns the 'off' path ohmic)."""
        current, _, _ = _symmetric_square_law(1.2, -0.4, 0.3, 1e-4, 0.0)
        assert current < 0.0

    def test_continuity_at_vds_zero(self):
        """I -> 0 from both sides and the ohmic slope gds matches."""
        below = _symmetric_square_law(1.0, -1e-9, 0.3, 1e-4, 0.05)
        above = _symmetric_square_law(1.0, 1e-9, 0.3, 1e-4, 0.05)
        assert below[0] == pytest.approx(0.0, abs=1e-12)
        assert above[0] == pytest.approx(0.0, abs=1e-12)
        assert below[2] == pytest.approx(above[2], rel=1e-6)


class TestDeviceEvaluate:
    @pytest.mark.parametrize("vd,vg,vs", [
        (1.2, 1.2, 0.0), (0.2, 1.2, 0.0), (0.0, 0.0, 0.0),
        (-0.3, 1.2, 0.0), (1.2, 0.6, 0.0),
    ])
    def test_nmos_derivatives_match_finite_difference(self, vd, vg, vs):
        device = nmos()
        eps = 1e-7
        current, gm, gds = device.evaluate(vd, vg, vs)
        fd_gm = (device.evaluate(vd, vg + eps, vs)[0]
                 - device.evaluate(vd, vg - eps, vs)[0]) / (2 * eps)
        fd_gds = (device.evaluate(vd + eps, vg, vs)[0]
                  - device.evaluate(vd - eps, vg, vs)[0]) / (2 * eps)
        assert gm == pytest.approx(fd_gm, rel=1e-5, abs=1e-12)
        assert gds == pytest.approx(fd_gds, rel=1e-5, abs=1e-12)

    @pytest.mark.parametrize("vd,vg,vs", [
        (0.0, 0.0, 1.2), (1.0, 0.0, 1.2), (1.5, 0.6, 1.2),
    ])
    def test_pmos_derivatives_match_finite_difference(self, vd, vg, vs):
        device = pmos()
        eps = 1e-7
        current, gm, gds = device.evaluate(vd, vg, vs)
        fd_gm = (device.evaluate(vd, vg + eps, vs)[0]
                 - device.evaluate(vd, vg - eps, vs)[0]) / (2 * eps)
        fd_gds = (device.evaluate(vd + eps, vg, vs)[0]
                  - device.evaluate(vd - eps, vg, vs)[0]) / (2 * eps)
        assert gm == pytest.approx(fd_gm, rel=1e-5, abs=1e-12)
        assert gds == pytest.approx(fd_gds, rel=1e-5, abs=1e-12)

    def test_pmos_pulls_up(self):
        """PMOS with gate low and source at VDD drives current into the
        drain (negative d->s current)."""
        device = pmos()
        current, _, _ = device.evaluate(0.0, 0.0, 1.2)
        assert current < 0.0

    def test_nmos_off_when_gate_low(self):
        current, gm, gds = nmos().evaluate(1.2, 0.0, 0.0)
        assert current == gm == gds == 0.0

    def test_validation(self):
        with pytest.raises(ParameterError):
            Mosfet(name="M", drain="d", gate="g", source="s", polarity=2,
                   vth=0.3, beta=1e-4)
        with pytest.raises(ParameterError):
            nmos(beta=-1.0)
        with pytest.raises(ParameterError):
            nmos(vth=0.0)
        with pytest.raises(ParameterError):
            nmos(lam=-0.1)

    def test_stamp_conserves_current(self):
        """Drain and source rows receive equal and opposite stamps."""
        device = nmos()
        n = 3
        matrix = np.zeros((n, n))
        rhs = np.zeros(n)
        index = {"d": 0, "g": 1, "s": 2}
        voltages = {"d": 0.6, "g": 1.2, "s": 0.0}
        device.stamp(lambda name: voltages[name],
                     lambda name: index[name], matrix, rhs)
        assert matrix[0] == pytest.approx(-matrix[2])
        assert rhs[0] == pytest.approx(-rhs[2])
        assert rhs[1] == 0.0              # gate draws no current
        assert np.all(matrix[1] == 0.0)
