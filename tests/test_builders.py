"""Unit tests for the circuit builders (stage, ring oscillator, chain)."""

import pytest

from repro import Stage, rc_optimum, units
from repro.circuits import (Circuit, GROUND, InverterCalibration,
                            add_mosfet_inverter, add_switch_inverter,
                            analytic_beta, build_buffered_line,
                            build_linear_stage, build_ring_oscillator)
from repro.errors import ParameterError


@pytest.fixture
def calibration(node):
    from repro.tech import calibrate_inverter
    return calibrate_inverter(node)


class TestInverterCalibration:
    def test_analytic_beta_positive(self):
        assert analytic_beta(1.2, 0.3, 7534.0) > 0.0

    def test_analytic_beta_requires_headroom(self):
        with pytest.raises(ParameterError):
            analytic_beta(0.3, 0.3, 7534.0)

    def test_scaled_beta(self, calibration):
        assert calibration.scaled_beta(10.0) == pytest.approx(
            10.0 * calibration.beta)
        with pytest.raises(ParameterError):
            calibration.scaled_beta(0.0)

    def test_validation(self, node):
        with pytest.raises(ParameterError):
            InverterCalibration(vdd=1.2, vth=1.5, beta=1e-4, lam=0.05,
                                driver=node.driver)
        with pytest.raises(ParameterError):
            InverterCalibration(vdd=1.2, vth=0.3, beta=-1e-4, lam=0.05,
                                driver=node.driver)


class TestInverterBuilders:
    def test_mosfet_inverter_elements(self, calibration):
        circuit = Circuit()
        circuit.voltage_source("VDD", "vdd", GROUND, calibration.vdd)
        add_mosfet_inverter(circuit, "inv", "a", "b", "vdd", calibration,
                            k=100.0)
        assert "inv.MN" in circuit and "inv.MP" in circuit
        assert circuit.element("inv.CG").capacitance == pytest.approx(
            100.0 * calibration.driver.c_0)
        assert circuit.element("inv.CP").capacitance == pytest.approx(
            100.0 * calibration.driver.c_p)

    def test_switch_inverter_elements(self, calibration):
        circuit = Circuit()
        add_switch_inverter(circuit, "inv", "a", "b", calibration, k=50.0)
        switch = circuit.element("inv")
        assert switch.r_out == pytest.approx(calibration.driver.r_s / 50.0)
        assert switch.threshold == pytest.approx(0.5 * calibration.vdd)


class TestLinearStage:
    def test_structure(self, node, rc_opt):
        line = node.line_with_inductance(1.0 * units.NH_PER_MM)
        stage = Stage(line=line, driver=node.driver,
                      h=rc_opt.h_opt, k=rc_opt.k_opt)
        bench = build_linear_stage(stage, segments=5)
        bench.circuit.validate()
        drv = stage.sized_driver
        assert bench.circuit.element("RS").resistance == pytest.approx(
            drv.r_series)
        assert bench.circuit.element("CL").capacitance == pytest.approx(
            drv.c_load)
        assert bench.ladder.segment_count == 5


class TestRingOscillator:
    def test_structure(self, calibration, node, rc_opt):
        line = node.line_with_inductance(1.0 * units.NH_PER_MM)
        ring = build_ring_oscillator(calibration, line, rc_opt.h_opt,
                                     rc_opt.k_opt, n_stages=5, segments=4)
        ring.circuit.validate()
        assert ring.n_stages == 5
        assert len(ring.ladders) == 5
        # Ring topology: ladder i connects stage i output to stage i+1 input.
        assert ring.ladders[4].output_node == ring.stage_inputs[0]

    def test_initial_conditions_alternate(self, calibration, node, rc_opt):
        ring = build_ring_oscillator(calibration, node.line, rc_opt.h_opt,
                                     rc_opt.k_opt, n_stages=5, segments=3)
        ics = ring.initial_voltages()
        assert ics[ring.ladders[0].input_node] == calibration.vdd
        assert ics[ring.ladders[1].input_node] == 0.0
        assert ics["vdd"] == calibration.vdd

    def test_switch_style_has_no_rail_node(self, calibration, node, rc_opt):
        ring = build_ring_oscillator(calibration, node.line, rc_opt.h_opt,
                                     rc_opt.k_opt, n_stages=3, segments=3,
                                     style="switch")
        ring.circuit.validate()
        assert "vdd" not in ring.initial_voltages() or not ring.has_rail_node
        assert not ring.has_rail_node

    def test_rejects_even_or_tiny_stage_counts(self, calibration, node,
                                               rc_opt):
        for n in (1, 2, 4):
            with pytest.raises(ParameterError):
                build_ring_oscillator(calibration, node.line, rc_opt.h_opt,
                                      rc_opt.k_opt, n_stages=n)

    def test_rejects_unknown_style(self, calibration, node, rc_opt):
        with pytest.raises(ParameterError):
            build_ring_oscillator(calibration, node.line, rc_opt.h_opt,
                                  rc_opt.k_opt, style="bsim4")


class TestBufferedLine:
    def test_structure(self, calibration, node, rc_opt):
        chain = build_buffered_line(calibration, node.line, rc_opt.h_opt,
                                    rc_opt.k_opt, n_stages=3, segments=3)
        chain.circuit.validate()
        assert len(chain.ladders) == 3
        assert "term.inv.MN" in chain.circuit

    def test_rejects_zero_stages(self, calibration, node, rc_opt):
        with pytest.raises(ParameterError):
            build_buffered_line(calibration, node.line, rc_opt.h_opt,
                                rc_opt.k_opt, n_stages=0)
