"""Unit tests for the transmission-line theory helpers."""

import math

import pytest

from repro import LineParams, units
from repro.core.line_theory import (attenuation, characteristic_impedance,
                                    classify_regime, critical_length_window,
                                    lc_transition_frequency, phase_velocity,
                                    propagation_constant)
from repro.errors import ParameterError

LOSSY = LineParams(r=4400.0, l=1e-6, c=1.2e-10)
NEAR_LOSSLESS = LineParams(r=1e-3, l=1e-6, c=1e-10)


class TestFrequencyDomainQuantities:
    def test_z0_high_frequency_limit(self):
        """Z0 -> sqrt(l/c) far above omega_LC."""
        omega = 100.0 * lc_transition_frequency(LOSSY)
        z0 = characteristic_impedance(LOSSY, omega)
        assert abs(z0) == pytest.approx(
            LOSSY.characteristic_impedance_lossless, rel=0.01)
        assert abs(z0.imag) < 0.05 * abs(z0.real)

    def test_z0_low_frequency_rc_limit(self):
        """Z0 -> sqrt(r/(j omega c)) with 45-degree phase below omega_LC."""
        omega = 0.001 * lc_transition_frequency(LOSSY)
        z0 = characteristic_impedance(LOSSY, omega)
        expected_mag = math.sqrt(LOSSY.r / (omega * LOSSY.c))
        assert abs(z0) == pytest.approx(expected_mag, rel=0.01)
        assert math.degrees(math.atan2(-z0.imag, z0.real)) == pytest.approx(
            45.0, abs=2.0)

    def test_phase_velocity_approaches_lc_speed(self):
        omega = 100.0 * lc_transition_frequency(LOSSY)
        v = phase_velocity(LOSSY, omega)
        assert v == pytest.approx(1.0 / math.sqrt(LOSSY.l * LOSSY.c),
                                  rel=0.01)

    def test_attenuation_matches_lossy_asymptote(self):
        """High-f attenuation alpha -> r/(2 Z0)."""
        omega = 300.0 * lc_transition_frequency(LOSSY)
        alpha = attenuation(LOSSY, omega)
        expected = LOSSY.r / (2.0 * LOSSY.characteristic_impedance_lossless)
        assert alpha == pytest.approx(expected, rel=0.01)

    def test_propagation_constant_components_nonnegative(self):
        gamma = propagation_constant(LOSSY, 1e10)
        assert gamma.real > 0.0
        assert gamma.imag > 0.0

    def test_lc_transition_frequency(self):
        assert lc_transition_frequency(LOSSY) == pytest.approx(4.4e9)
        rc_line = LineParams(r=4400.0, l=0.0, c=1.2e-10)
        assert math.isinf(lc_transition_frequency(rc_line))

    def test_omega_validation(self):
        with pytest.raises(ParameterError):
            characteristic_impedance(LOSSY, 0.0)
        with pytest.raises(ParameterError):
            propagation_constant(LOSSY, -1.0)


class TestRegimeClassification:
    def test_short_line_is_rc(self):
        """A very short line never resolves the flight time."""
        regime = classify_regime(LOSSY, 1e-4, rise_time=50e-12)
        assert not regime.flight_criterion
        assert not regime.transmission_line_effects

    def test_long_line_attenuated(self):
        """A very long line dies resistively before reflecting."""
        regime = classify_regime(LOSSY, 0.1, rise_time=50e-12)
        assert regime.flight_criterion
        assert not regime.attenuation_criterion
        assert not regime.transmission_line_effects

    def test_window_interior_shows_tl_effects(self):
        h_min, h_max = critical_length_window(LOSSY, 50e-12)
        assert 0.0 < h_min < h_max
        middle = math.sqrt(h_min * h_max)
        regime = classify_regime(LOSSY, middle, rise_time=50e-12)
        assert regime.transmission_line_effects

    def test_window_boundaries_consistent(self):
        rise = 50e-12
        h_min, h_max = critical_length_window(LOSSY, rise)
        assert h_min == pytest.approx(
            0.5 * rise / LOSSY.time_of_flight_per_length)
        assert h_max == pytest.approx(
            2.0 * LOSSY.characteristic_impedance_lossless / LOSSY.r)

    def test_table1_stage_sits_inside_the_window(self):
        """The paper's operating point: an RC-optimal 100 nm segment with
        l ~ 1 nH/mm falls inside the transmission-line window for
        realistic edge rates — which is why Figs. 9-10 show reflections."""
        from repro import NODE_100NM, rc_optimum
        node = NODE_100NM
        line = node.line_with_inductance(1.0 * units.NH_PER_MM)
        rc = rc_optimum(node.line, node.driver)
        regime = classify_regime(line, rc.h_opt, rise_time=30e-12)
        assert regime.transmission_line_effects

    def test_rc_line_has_no_window(self):
        rc_line = LineParams(r=4400.0, l=0.0, c=1.2e-10)
        regime = classify_regime(rc_line, 0.01, rise_time=50e-12)
        assert not regime.transmission_line_effects
        h_min, h_max = critical_length_window(rc_line, 50e-12)
        assert math.isinf(h_min)

    def test_validation(self):
        with pytest.raises(ParameterError):
            classify_regime(LOSSY, 0.0, rise_time=1e-12)
        with pytest.raises(ParameterError):
            classify_regime(LOSSY, 0.01, rise_time=0.0)
