"""Unit tests for the skin-effect resistance model."""

import math

import pytest

from repro.errors import ExtractionError
from repro.extraction import COPPER_RESISTIVITY, wire_from_tech
from repro.extraction.skin import (effective_area, resistance_at_frequency,
                                   resistance_ratio_table, skin_depth,
                                   skin_onset_frequency)
from repro.tech import NODE_250NM


@pytest.fixture
def wire():
    return wire_from_tech(NODE_250NM.geometry)


class TestSkinDepth:
    def test_copper_at_1ghz(self):
        """Classic reference: Cu skin depth ~2.1 um at 1 GHz for bulk
        resistivity; our barrier-adjusted rho gives ~2.4 um."""
        delta = skin_depth(COPPER_RESISTIVITY, 1e9)
        assert delta == pytest.approx(2.36e-6, rel=0.02)

    def test_scales_as_inverse_sqrt_frequency(self):
        d1 = skin_depth(COPPER_RESISTIVITY, 1e9)
        d4 = skin_depth(COPPER_RESISTIVITY, 4e9)
        assert d4 == pytest.approx(d1 / 2.0, rel=1e-9)

    def test_validation(self):
        with pytest.raises(ExtractionError):
            skin_depth(0.0, 1e9)
        with pytest.raises(ExtractionError):
            skin_depth(COPPER_RESISTIVITY, -1.0)


class TestEffectiveArea:
    def test_full_area_for_deep_skin(self, wire):
        delta = 10.0 * max(wire.width, wire.thickness)
        assert effective_area(wire, delta) == pytest.approx(
            wire.cross_section)

    def test_shell_area_for_shallow_skin(self, wire):
        delta = 0.1e-6
        area = effective_area(wire, delta)
        assert area < wire.cross_section
        expected = (wire.cross_section
                    - (wire.width - 2 * delta) * (wire.thickness - 2 * delta))
        assert area == pytest.approx(expected)


class TestResistance:
    def test_dc_limit_at_low_frequency(self, wire):
        r_low = resistance_at_frequency(wire, COPPER_RESISTIVITY, 1e6)
        r_dc = wire.resistance_per_length(COPPER_RESISTIVITY)
        assert r_low == pytest.approx(r_dc, rel=1e-9)

    def test_monotone_increase_with_frequency(self, wire):
        values = [resistance_at_frequency(wire, COPPER_RESISTIVITY, f)
                  for f in (1e8, 1e9, 1e10, 1e11)]
        assert all(b >= a for a, b in zip(values, values[1:]))
        assert values[-1] > values[0]

    def test_sqrt_f_asymptote(self, wire):
        """Deep in the skin regime r grows ~ sqrt(f)."""
        r1 = resistance_at_frequency(wire, COPPER_RESISTIVITY, 1e11)
        r4 = resistance_at_frequency(wire, COPPER_RESISTIVITY, 4e11)
        assert r4 / r1 == pytest.approx(2.0, rel=0.15)

    def test_onset_frequency_consistent(self, wire):
        onset = skin_onset_frequency(wire, COPPER_RESISTIVITY)
        # Table 1 wires: onset in the mid-GHz range (~5.6 GHz).
        assert 1e9 < onset < 1e10
        delta = skin_depth(COPPER_RESISTIVITY, onset)
        assert delta == pytest.approx(
            0.5 * min(wire.width, wire.thickness), rel=1e-9)
        # Just below onset the resistance is still (essentially) DC.
        r_below = resistance_at_frequency(wire, COPPER_RESISTIVITY,
                                          0.9 * onset)
        r_dc = wire.resistance_per_length(COPPER_RESISTIVITY)
        assert r_below == pytest.approx(r_dc, rel=1e-9)

    def test_ratio_table(self, wire):
        table = resistance_ratio_table(wire, COPPER_RESISTIVITY,
                                       [1e8, 1e11])
        assert table[1e8] == pytest.approx(1.0, rel=1e-9)
        assert table[1e11] > 1.5
