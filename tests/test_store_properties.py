"""Property-based tests for the result-store plane.

Four properties pin the store contracts under arbitrary operation
sequences — the memory tier never exceeds its byte budget, a tiered
store's reads are bitwise identical to a plain disk store's, promotion
on hit is idempotent, and legacy flat-layout records stay readable
through migration — plus a 16-thread stress test proving single-flight
performs exactly one evaluation per unique in-flight spec.
"""

import json
import tempfile
import threading
from collections import Counter
from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import NODE_100NM, units
from repro.engine.jobs import DelayJob, canonical_json
from repro.engine.store import (DiskStore, MemoryStore, SingleFlight,
                                TieredStore)

NH = units.NH_PER_MM

#: A fixed palette of distinct specs; strategies index into it.
_JOBS = [DelayJob(line=NODE_100NM.line_with_inductance(0.25 * i * NH),
                  driver=NODE_100NM.driver, h=0.01, k=150.0)
         for i in range(8)]

_payloads = st.dictionaries(
    st.sampled_from(["tau", "delay_per_length", "threshold", "x", "y"]),
    st.floats(allow_nan=False, allow_infinity=False)
    | st.integers(-10**6, 10**6),
    min_size=1, max_size=4)

_put_sequences = st.lists(
    st.tuples(st.integers(min_value=0, max_value=len(_JOBS) - 1),
              _payloads),
    min_size=1, max_size=24)


def _entry_cost(payload):
    return len(canonical_json(payload).encode("utf-8"))


@given(ops=_put_sequences, budget=st.integers(min_value=0, max_value=400))
def test_memory_budget_never_exceeded(ops, budget):
    """After every operation: total bytes <= budget, and the occupancy
    accounting equals the sum of the retained entries' costs."""
    store = MemoryStore(max_bytes=budget)
    for index, payload in ops:
        store.put(_JOBS[index], payload)
        stats = store.stats()
        assert stats.total_bytes <= budget
        if budget == 0:
            assert stats.entries == 0
    retained = [payload for index in range(len(_JOBS))
                if (payload := store.get(_JOBS[index])) is not None]
    assert store.stats().total_bytes \
        == sum(_entry_cost(payload) for payload in retained)


@settings(deadline=None, max_examples=30)
@given(ops=_put_sequences)
def test_tiered_get_bitwise_equals_disk_get(ops):
    """A tiered store is transparent: every read equals a plain disk
    store's read of the same put sequence, bit for bit — whether it was
    served from memory or fell through to disk after an eviction."""
    with tempfile.TemporaryDirectory() as tmp:
        disk = DiskStore(Path(tmp) / "disk")
        # A tiny memory tier forces evictions, so some reads are memory
        # hits and others disk fall-throughs within one example.
        tiered = TieredStore(root=Path(tmp) / "tiered", max_bytes=256)
        for index, payload in ops:
            disk.put(_JOBS[index], payload)
            tiered.put(_JOBS[index], payload)
        for index in range(len(_JOBS)):
            expected = disk.get(_JOBS[index])
            produced = tiered.get(_JOBS[index])
            if expected is None:
                assert produced is None
            else:
                assert canonical_json(produced) \
                    == canonical_json(expected)


@settings(deadline=None, max_examples=30)
@given(payload=_payloads)
def test_promote_on_hit_is_idempotent(payload):
    with tempfile.TemporaryDirectory() as tmp:
        store = TieredStore(root=tmp)
        store.disk.put(_JOBS[0], payload)
        first = store.get(_JOBS[0])       # disk hit -> promote
        promoted = store.memory.stats()
        second = store.get(_JOBS[0])      # memory hit
        assert canonical_json(second) == canonical_json(first)
        after = store.memory.stats()
        assert (after.entries, after.total_bytes) \
            == (promoted.entries, promoted.total_bytes)
        # Re-promoting after the memory tier was dropped converges to
        # the same occupancy — promotion replaces, never accumulates.
        store.memory.clear()
        store.get(_JOBS[0])
        store.get(_JOBS[0])
        again = store.memory.stats()
        assert (again.entries, again.total_bytes) \
            == (promoted.entries, promoted.total_bytes)


@settings(deadline=None, max_examples=30)
@given(payload=_payloads)
def test_legacy_flat_records_readable_through_migration(payload):
    with tempfile.TemporaryDirectory() as tmp:
        store = DiskStore(tmp)
        key = store.key(_JOBS[0])
        legacy = Path(tmp) / f"{key}.json"
        legacy.write_text(json.dumps(
            {"key": key, "salt": store.salt, "job": {},
             "result": payload}))
        first = store.get(_JOBS[0])
        assert canonical_json(first) == canonical_json(payload)
        assert not legacy.exists()            # migrated into its shard
        assert store.path_for(key).exists()
        second = store.get(_JOBS[0])          # now served by the shard
        assert canonical_json(second) == canonical_json(payload)


def test_sixteen_thread_single_flight_one_evaluation_per_spec():
    """16 threads race onto 4 unique specs; each spec is evaluated
    exactly once and every caller gets the leader's exact object."""
    flights = SingleFlight()
    n_threads, n_keys = 16, 4
    evaluations = Counter()
    counter_lock = threading.Lock()
    release = threading.Event()
    results = [None] * n_threads

    def evaluate(key):
        with counter_lock:
            evaluations[key] += 1
        # Hold every leader in flight until all 16 threads have joined,
        # so no flight can resolve before its followers arrive.
        assert release.wait(timeout=10.0)
        return {"spec": key}

    def worker(index):
        key = f"spec-{index % n_keys}"
        results[index] = flights.do(key, lambda: evaluate(key))

    threads = [threading.Thread(target=worker, args=(index,))
               for index in range(n_threads)]
    for thread in threads:
        thread.start()
    deadline = threading.Event()
    while True:
        stats = flights.stats()
        if stats["leads"] == n_keys \
                and stats["followers"] == n_threads - n_keys:
            break
        assert not deadline.wait(0.001)
    release.set()
    for thread in threads:
        thread.join(timeout=10.0)
        assert not thread.is_alive()

    assert evaluations == {f"spec-{i}": 1 for i in range(n_keys)}
    by_key = {}
    for index, result in enumerate(results):
        key = f"spec-{index % n_keys}"
        assert result == {"spec": key}
        # Followers receive the leader's object itself, not a copy.
        assert by_key.setdefault(key, result) is result
