"""Unit tests for the content-addressed result cache."""

import json

import pytest

from repro import NODE_100NM, units
from repro.engine.cache import (CacheStats, ResultCache, code_version_salt,
                                default_cache_dir)
from repro.engine.jobs import OptimizeJob


@pytest.fixture()
def job():
    line = NODE_100NM.line_with_inductance(1.0 * units.NH_PER_MM)
    return OptimizeJob(line=line, driver=NODE_100NM.driver)


@pytest.fixture()
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


class TestKeys:
    def test_key_is_stable_sha256(self, cache, job):
        key = cache.key(job)
        assert len(key) == 64
        assert key == cache.key(job)
        int(key, 16)  # hex digest

    def test_key_depends_on_spec(self, cache, job):
        other = OptimizeJob(line=job.line, driver=job.driver, f=0.4)
        assert cache.key(job) != cache.key(other)

    def test_key_depends_on_code_version_salt(self, tmp_path, job):
        a = ResultCache(tmp_path, salt="v1")
        b = ResultCache(tmp_path, salt="v2")
        assert a.key(job) != b.key(job)

    def test_default_salt_carries_version(self):
        from repro import __version__
        assert __version__ in code_version_salt()


class TestStoreAndLookup:
    def test_miss_then_hit(self, cache, job):
        assert cache.get(job) is None
        cache.put(job, {"h_opt": 1.0})
        assert cache.get(job) == {"h_opt": 1.0}
        assert cache.hits == 1
        assert cache.misses == 1

    def test_record_is_self_describing(self, cache, job):
        key = cache.put(job, {"h_opt": 1.0})
        record = json.loads(cache.path_for(key).read_text())
        assert record["key"] == key
        assert record["salt"] == cache.salt
        assert record["job"]["kind"] == "optimize"

    def test_corrupt_record_counts_as_miss(self, cache, job):
        key = cache.put(job, {"h_opt": 1.0})
        cache.path_for(key).write_text("{not json")
        assert cache.get(job) is None

    def test_salt_mismatch_is_a_miss(self, tmp_path, job):
        ResultCache(tmp_path, salt="v1").put(job, {"h_opt": 1.0})
        assert ResultCache(tmp_path, salt="v2").get(job) is None


class TestMaintenance:
    def test_stats_and_clear(self, cache, job):
        other = OptimizeJob(line=job.line, driver=job.driver, f=0.4)
        cache.put(job, {"h_opt": 1.0})
        cache.put(other, {"h_opt": 2.0})
        stats = cache.stats()
        assert stats.entries == 2
        assert stats.total_bytes > 0
        assert cache.clear() == 2
        assert cache.stats().entries == 0

    def test_stats_on_missing_directory(self, tmp_path):
        cache = ResultCache(tmp_path / "never-created")
        assert cache.stats().entries == 0
        assert cache.clear() == 0

    def test_hit_rate_accounting(self):
        stats = CacheStats(entries=0, total_bytes=0, hits=19, misses=1)
        assert stats.hit_rate == pytest.approx(0.95)
        assert "95.0%" in stats.format_summary()

    def test_default_dir_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", "/tmp/somewhere-else")
        assert str(default_cache_dir()) == "/tmp/somewhere-else"
        monkeypatch.delenv("REPRO_CACHE_DIR")
        assert str(default_cache_dir()) == ".repro-cache"
