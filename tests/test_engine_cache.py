"""Unit tests for the content-addressed result cache."""

import json
import threading

import pytest

from repro import NODE_100NM, units
from repro.engine.cache import (CacheStats, ResultCache, code_version_salt,
                                default_cache_dir)
from repro.engine.jobs import OptimizeJob


@pytest.fixture()
def job():
    line = NODE_100NM.line_with_inductance(1.0 * units.NH_PER_MM)
    return OptimizeJob(line=line, driver=NODE_100NM.driver)


@pytest.fixture()
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


class TestKeys:
    def test_key_is_stable_sha256(self, cache, job):
        key = cache.key(job)
        assert len(key) == 64
        assert key == cache.key(job)
        int(key, 16)  # hex digest

    def test_key_depends_on_spec(self, cache, job):
        other = OptimizeJob(line=job.line, driver=job.driver, f=0.4)
        assert cache.key(job) != cache.key(other)

    def test_key_depends_on_code_version_salt(self, tmp_path, job):
        a = ResultCache(tmp_path, salt="v1")
        b = ResultCache(tmp_path, salt="v2")
        assert a.key(job) != b.key(job)

    def test_default_salt_carries_version(self):
        from repro import __version__
        assert __version__ in code_version_salt()


class TestStoreAndLookup:
    def test_miss_then_hit(self, cache, job):
        assert cache.get(job) is None
        cache.put(job, {"h_opt": 1.0})
        assert cache.get(job) == {"h_opt": 1.0}
        assert cache.hits == 1
        assert cache.misses == 1

    def test_record_is_self_describing(self, cache, job):
        key = cache.put(job, {"h_opt": 1.0})
        record = json.loads(cache.path_for(key).read_text())
        assert record["key"] == key
        assert record["salt"] == cache.salt
        assert record["job"]["kind"] == "optimize"

    def test_corrupt_record_counts_as_miss(self, cache, job):
        key = cache.put(job, {"h_opt": 1.0})
        cache.path_for(key).write_text("{not json")
        assert cache.get(job) is None

    def test_corrupt_record_is_unlinked(self, cache, job):
        """A torn record must not shadow the next healthy ``put``."""
        key = cache.put(job, {"h_opt": 1.0})
        path = cache.path_for(key)
        # Truncate mid-record: the half a killed writer would leave
        # behind if os.replace were not atomic, or a full disk produced.
        text = path.read_text()
        path.write_text(text[: len(text) // 2])
        assert cache.get(job) is None
        assert not path.exists()
        assert cache.misses == 1
        # The store heals on the next put/get cycle.
        cache.put(job, {"h_opt": 2.0})
        assert cache.get(job) == {"h_opt": 2.0}

    def test_record_missing_result_field_is_a_miss(self, cache, job):
        key = cache.put(job, {"h_opt": 1.0})
        path = cache.path_for(key)
        record = json.loads(path.read_text())
        del record["result"]
        path.write_text(json.dumps(record))
        assert cache.get(job) is None
        assert not path.exists()

    def test_plain_miss_does_not_unlink_neighbours(self, cache, job):
        key = cache.put(job, {"h_opt": 1.0})
        other = OptimizeJob(line=job.line, driver=job.driver, f=0.4)
        assert cache.get(other) is None  # never written
        assert cache.path_for(key).exists()

    def test_salt_mismatch_is_a_miss(self, tmp_path, job):
        ResultCache(tmp_path, salt="v1").put(job, {"h_opt": 1.0})
        assert ResultCache(tmp_path, salt="v2").get(job) is None


class TestConcurrentWriters:
    def test_racing_writers_leave_exactly_one_valid_record(self, cache,
                                                           job):
        """Atomic ``os.replace`` under a many-thread write storm.

        Every writer stores a distinct payload under the *same* key; no
        interleaving may produce a torn record, a leftover temp file, or
        more than one record on disk.
        """
        n_writers = 16
        barrier = threading.Barrier(n_writers)
        errors = []

        def write(i):
            try:
                barrier.wait(timeout=10.0)
                cache.put(job, {"h_opt": float(i)})
            except Exception as exc:  # noqa: BLE001 — assert below
                errors.append(exc)

        threads = [threading.Thread(target=write, args=(i,))
                   for i in range(n_writers)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        assert not errors

        records = [path for shard in cache.root.iterdir() if shard.is_dir()
                   for path in shard.iterdir()]
        assert [path.name for path in records] \
            == [f"{cache.key(job)}.json"]  # one record, no .tmp leftovers
        record = json.loads(records[0].read_text())  # parses cleanly
        assert record["result"] in [{"h_opt": float(i)}
                                    for i in range(n_writers)]
        assert cache.get(job) == record["result"]


class TestMaintenance:
    def test_stats_and_clear(self, cache, job):
        other = OptimizeJob(line=job.line, driver=job.driver, f=0.4)
        cache.put(job, {"h_opt": 1.0})
        cache.put(other, {"h_opt": 2.0})
        stats = cache.stats()
        assert stats.entries == 2
        assert stats.total_bytes > 0
        assert cache.clear() == 2
        assert cache.stats().entries == 0

    def test_stats_on_missing_directory(self, tmp_path):
        cache = ResultCache(tmp_path / "never-created")
        assert cache.stats().entries == 0
        assert cache.clear() == 0

    def test_hit_rate_accounting(self):
        stats = CacheStats(entries=0, total_bytes=0, hits=19, misses=1)
        assert stats.hit_rate == pytest.approx(0.95)
        assert "95.0%" in stats.format_summary()

    def test_default_dir_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", "/tmp/somewhere-else")
        assert str(default_cache_dir()) == "/tmp/somewhere-else"
        monkeypatch.delenv("REPRO_CACHE_DIR")
        assert str(default_cache_dir()) == ".repro-cache"
