"""Unit tests for the Kahng-Muddu and Ismail-Friedman baselines."""

import math

import pytest

from repro import (ParameterError, StepResponse, compute_moments,
                   threshold_delay, units)
from repro.baselines import (if_optimum, km_applicability, km_delay,
                             km_delay_critically_damped, km_delay_overdamped,
                             km_delay_underdamped, t_lr,
                             validity_ranges_satisfied)
from repro.core.poles import compute_poles
from repro.core.response import canonical_response


class TestKahngMuddu:
    def test_overdamped_branch_accurate_when_far_from_critical(self):
        """Highly overdamped: the dominant-pole delay is near exact."""
        wn = 1e9
        b1, b2 = 2.0 * 5.0 / wn, 1.0 / wn ** 2   # zeta = 5
        exact = threshold_delay(canonical_response(5.0, wn), 0.5).tau
        approx = km_delay_overdamped(b1, b2, 0.5)
        assert approx == pytest.approx(exact, rel=0.02)

    def test_underdamped_branch_accurate_when_far_from_critical(self):
        wn = 1e9
        zeta = 0.05
        b1, b2 = 2.0 * zeta / wn, 1.0 / wn ** 2
        exact = threshold_delay(canonical_response(zeta, wn), 0.5).tau
        approx = km_delay_underdamped(b1, b2, 0.5)
        assert approx == pytest.approx(exact, rel=0.08)

    def test_critically_damped_closed_form(self):
        """x solving (1+x)e^{-x} = 0.5 is 1.67835; tau = x b1/2."""
        b1 = 1e-10
        tau = km_delay_critically_damped(b1, 0.5)
        assert tau == pytest.approx(1.67835 * b1 / 2.0, rel=1e-4)

    def test_critical_branch_independent_of_inductance(self, node, rc_opt,
                                                       stage_rc):
        """The paper's critique: near critical damping, the KM delay
        depends only on b1 and therefore cannot see l at all."""
        from repro import Stage, critical_inductance
        stage = Stage(line=node.line, driver=node.driver,
                      h=rc_opt.h_opt, k=rc_opt.k_opt)
        l_crit = critical_inductance(stage)
        taus = []
        for factor in (0.9, 1.0, 1.1):
            moments = compute_moments(stage.with_inductance(factor * l_crit))
            taus.append(km_delay(moments.b1, moments.b2, 0.5))
        assert taus[0] == taus[1] == taus[2]

    def test_exact_delay_does_change_near_critical(self, node, rc_opt):
        """...whereas the true Eq. 3 solution does change with l there."""
        from repro import Stage, critical_inductance
        stage = Stage(line=node.line, driver=node.driver,
                      h=rc_opt.h_opt, k=rc_opt.k_opt)
        l_crit = critical_inductance(stage)
        taus = []
        for factor in (0.9, 1.1):
            moments = compute_moments(stage.with_inductance(factor * l_crit))
            taus.append(threshold_delay(
                StepResponse.from_moments(moments), 0.5).tau)
        assert abs(taus[0] - taus[1]) / taus[1] > 1e-3

    def test_applicability_check(self):
        assert km_applicability(10.0, 1.0)          # far overdamped
        assert km_applicability(0.1, 10.0)          # far underdamped
        assert not km_applicability(2.0, 1.0001)    # nearly critical

    def test_dispatch_selects_branches(self):
        wn = 1e9
        over = km_delay(2.0 * 5.0 / wn, 1.0 / wn ** 2, 0.5)
        assert over == pytest.approx(
            km_delay_overdamped(2.0 * 5.0 / wn, 1.0 / wn ** 2, 0.5))
        under = km_delay(2.0 * 0.1 / wn, 1.0 / wn ** 2, 0.5)
        assert under == pytest.approx(
            km_delay_underdamped(2.0 * 0.1 / wn, 1.0 / wn ** 2, 0.5))
        near = km_delay(2.0 / wn, 1.0001 / wn ** 2, 0.5)
        assert near == pytest.approx(km_delay_critically_damped(2.0 / wn, 0.5))

    def test_branch_domain_validation(self):
        with pytest.raises(ParameterError):
            km_delay_overdamped(1.0, 1.0, 0.5)      # underdamped moments
        with pytest.raises(ParameterError):
            km_delay_underdamped(10.0, 1.0, 0.5)    # overdamped moments
        with pytest.raises(ParameterError):
            km_delay(-1.0, 1.0, 0.5)
        with pytest.raises(ParameterError):
            km_delay(1.0, 1.0, 1.5)


class TestIsmailFriedman:
    def test_reduces_to_rc_optimum_at_zero_inductance(self, node):
        from repro import rc_optimum
        result = if_optimum(node.line, node.driver)
        reference = rc_optimum(node.line, node.driver)
        assert result.t_lr == 0.0
        assert result.h_opt == pytest.approx(reference.h_opt)
        assert result.k_opt == pytest.approx(reference.k_opt)
        assert result.inductance_negligible

    def test_trends_match_paper_figures(self, node):
        """h grows and k shrinks with l, like the exact optimizer."""
        previous = None
        for l_nh in (0.5, 2.0, 5.0):
            line = node.line_with_inductance(l_nh * units.NH_PER_MM)
            result = if_optimum(line, node.driver)
            if previous is not None:
                assert result.h_opt > previous.h_opt
                assert result.k_opt < previous.k_opt
            previous = result

    def test_t_lr_dimensionless_and_scales(self, node):
        line1 = node.line_with_inductance(1.0 * units.NH_PER_MM)
        line4 = node.line_with_inductance(4.0 * units.NH_PER_MM)
        assert t_lr(line4, node.driver) == pytest.approx(
            2.0 * t_lr(line1, node.driver))

    def test_same_order_as_exact_optimizer(self, node):
        """Within a factor ~1.6 of the exact optimum across the practical
        range — the same order of magnitude (a meaningful baseline) but far
        enough off to motivate the paper's exact method.  Note our T_LR
        normalization is a documented reconstruction."""
        from repro import optimize_repeater
        line = node.line_with_inductance(2.0 * units.NH_PER_MM)
        empirical = if_optimum(line, node.driver)
        exact = optimize_repeater(line, node.driver)
        assert 0.6 < empirical.h_opt / exact.h_opt < 1.7
        assert 0.6 < empirical.k_opt / exact.k_opt < 1.7

    def test_validity_ranges_violated_at_global_wire_optimum(self, node,
                                                             rc_opt):
        """The paper's critique: realistic optima sit outside the fitted
        validity box (line capacitance >> load capacitance)."""
        assert not validity_ranges_satisfied(node.line, node.driver,
                                             rc_opt.h_opt, rc_opt.k_opt)

    def test_validity_ranges_satisfiable_for_short_lines(self, node):
        """A very short, strongly driven segment sits inside the box."""
        h = 0.1e-3
        k = math.sqrt(node.driver.r_s / (node.line.r * h)
                      * node.line.c * h / node.driver.c_0)
        # Choose k so both ratios equal ~sqrt(...) <= 1.
        k = max(k, node.line.c * h / node.driver.c_0,
                node.driver.r_s / (node.line.r * h))
        assert validity_ranges_satisfied(node.line, node.driver, h, k)

    def test_validity_check_rejects_bad_geometry(self, node):
        with pytest.raises(ParameterError):
            validity_ranges_satisfied(node.line, node.driver, -1.0, 100.0)
