"""End-to-end tests of the repro-batch CLI."""

import json

import pytest

from repro.engine.cli import main


@pytest.fixture()
def manifest(tmp_path):
    path = tmp_path / "manifest.json"
    path.write_text(json.dumps(
        [{"kind": "optimize", "node": "100nm", "l_nh_per_mm": l}
         for l in (0.0, 0.5, 1.0)]))
    return path


@pytest.fixture()
def cache_dir(tmp_path):
    return tmp_path / "cache"


class TestRun:
    def test_run_prints_table_and_metrics(self, manifest, cache_dir,
                                          capsys):
        assert main(["run", str(manifest), "--cache-dir",
                     str(cache_dir)]) == 0
        output = capsys.readouterr().out
        assert "optimize" in output
        assert "jobs: 3 total, 3 ok, 0 failed" in output
        assert "cache: 0 hits / 3 misses" in output

    def test_second_run_hits_cache_and_matches(self, manifest, cache_dir,
                                               tmp_path, capsys):
        out_a = tmp_path / "a.json"
        out_b = tmp_path / "b.json"
        assert main(["run", str(manifest), "--cache-dir", str(cache_dir),
                     "--out", str(out_a)]) == 0
        capsys.readouterr()
        assert main(["run", str(manifest), "--cache-dir", str(cache_dir),
                     "--out", str(out_b)]) == 0
        assert "cache: 3 hits / 0 misses (100.0% hit rate)" \
            in capsys.readouterr().out
        assert out_a.read_text() == out_b.read_text()

    def test_no_cache_flag(self, manifest, cache_dir, capsys):
        assert main(["run", str(manifest), "--cache-dir", str(cache_dir),
                     "--no-cache"]) == 0
        capsys.readouterr()
        assert main(["cache", "stats", "--cache-dir",
                     str(cache_dir)]) == 0
        assert "0 entries" in capsys.readouterr().out

    def test_failed_job_sets_exit_code(self, tmp_path, cache_dir, capsys):
        path = tmp_path / "poison.json"
        path.write_text(json.dumps([
            {"kind": "optimize", "node": "100nm", "l_nh_per_mm": 0.5},
            {"kind": "optimize", "node": "100nm", "l_nh_per_mm": 2.0,
             "method": "newton", "max_iterations": 1,
             "initial": [1e-4, 5.0], "retry_reseed": False},
        ]))
        assert main(["run", str(path), "--cache-dir",
                     str(cache_dir)]) == 1
        output = capsys.readouterr().out
        assert "FAILED" in output
        assert "1 failed" in output
        assert output.count("ok") >= 1

    def test_out_payload_is_deterministic_json(self, manifest, cache_dir,
                                               tmp_path, capsys):
        out = tmp_path / "results.json"
        assert main(["run", str(manifest), "--cache-dir", str(cache_dir),
                     "--out", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert len(payload) == 3
        assert all(p["status"] == "ok" for p in payload)
        assert all("wall_time" not in p for p in payload)
        assert payload[0]["result"]["h_opt"] > 0.0

    def test_bad_manifest_exit_code(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text("{broken")
        assert main(["run", str(path)]) == 2
        assert "repro-batch" in capsys.readouterr().err


class TestCacheCommands:
    def test_stats_and_clear(self, manifest, cache_dir, capsys):
        main(["run", str(manifest), "--cache-dir", str(cache_dir)])
        capsys.readouterr()
        assert main(["cache", "stats", "--cache-dir",
                     str(cache_dir)]) == 0
        assert "3 entries" in capsys.readouterr().out
        assert main(["cache", "clear", "--cache-dir",
                     str(cache_dir)]) == 0
        assert "removed 3 cached results" in capsys.readouterr().out
        main(["cache", "stats", "--cache-dir", str(cache_dir)])
        assert "0 entries" in capsys.readouterr().out
