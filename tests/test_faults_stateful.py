"""Stateful invariant harness: Hypothesis drives a live faulted server.

A :class:`~hypothesis.stateful.RuleBasedStateMachine` runs a real
``ServerThread`` (sockets, asyncio loop, executor threads) backed by an
on-disk result cache, arms fault rules *while the server is live*, and
fires request traffic at it.  After every step the machine holds the
stack to its contract:

* every admitted request is answered or explicitly rejected — a client
  timeout (a silently dropped lane) fails the test;
* every successful response is bitwise identical to the request's own
  solo ``job.run()`` ground truth (precomputed before any plan exists);
* the cache never serves a torn record, and its orphaned ``.tmp`` files
  are exactly the injected ``cache.put.stale_tmp`` events;
* lane-scoped faults fail lanes, not bursts — with no rules armed,
  nothing fails at all;
* ``/metrics`` reconciles: ``requests_total`` equals the recorded
  outcomes (excluding pre-parse ``unknown`` outcomes).

Example count is ``REPRO_FAULTS_EXAMPLES`` (default 25 for local runs;
CI pins 200 with a fixed ``--hypothesis-seed``).
"""

import http.client
import os
import shutil
import socket
import tempfile

from hypothesis import HealthCheck, settings
from hypothesis import strategies as st
from hypothesis.stateful import (RuleBasedStateMachine, initialize, invariant,
                                 rule)

from repro.engine.cache import ResultCache
from repro.engine.jobs import canonical_json, job_to_dict
from repro.faults import FaultPlan, FaultRule, hooks
from repro.faults.harness import (EXECUTION_COUNTERS, OPTIMIZE_FAULT_SITES,
                                  _workload_jobs)
from repro.serve.client import ServeClient, ServeClientError
from repro.serve.server import ServerThread
from repro.serve.service import ReproService

#: Sites the live-server machine may arm (serve + cache scenarios; the
#: engine sites are exercised by the executor fault tests instead).
ARMABLE_SITES = (
    "cache.get.os_error", "cache.get.torn_record", "cache.put.os_error",
    "cache.put.stale_tmp", "kernels.threshold_delay.nan_lane",
    "serve.optimize.lane_error", "batcher.dispatch.delay",
    "batcher.evaluate.error", "batcher.envelope.malformed",
    "server.read.drop", "server.write.truncate",
)

MAX_EXAMPLES = int(os.environ.get("REPRO_FAULTS_EXAMPLES", "25"))

#: Ground truths: kind -> [canonical solo result per workload job].
#: Computed once, with no fault plan installed.
_WORKLOAD = None
_TRUTHS = None


def _normalized(kind, payload):
    document = dict(payload)
    if kind == "optimize":
        trace = document.get("trace")
        if isinstance(trace, dict):
            document["trace"] = {k: v for k, v in trace.items()
                                 if k not in EXECUTION_COUNTERS}
    return canonical_json(document)


def _workload_and_truths():
    global _WORKLOAD, _TRUTHS
    if _WORKLOAD is None:
        assert hooks.ACTIVE is None
        _WORKLOAD = _workload_jobs()
        _TRUTHS = {kind: [_normalized(kind, job.run()) for job in jobs]
                   for kind, jobs in _WORKLOAD.items()}
    return _WORKLOAD, _TRUTHS


class FaultedServerMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.workload, self.truths = _workload_and_truths()
        self.tmpdir = tempfile.mkdtemp(prefix="repro-faults-state-")
        self.cache = ResultCache(self.tmpdir)
        self.service = ReproService(cache=self.cache, max_batch_size=8,
                                    max_linger=0.02, default_timeout=10.0)
        self.plan = None
        self.handle = None
        self.client = None
        self.armed_sites = set()

    # -- lifecycle -----------------------------------------------------
    @initialize(seed=st.integers(min_value=0, max_value=2**31 - 1))
    def start_server(self, seed):
        self.plan = hooks.install(FaultPlan(seed=seed))
        self.handle = ServerThread(self.service).start()
        self.client = ServeClient.from_url(self.handle.url, timeout=15.0)

    def teardown(self):
        try:
            if self.client is not None:
                self.client.close()
            if self.handle is not None:
                self.handle.stop()
                self._check_cache()
                self._check_metrics(self.service.metrics.to_payload())
        finally:
            hooks.uninstall()
            shutil.rmtree(self.tmpdir, ignore_errors=True)

    # -- fault dial ----------------------------------------------------
    @rule(site=st.sampled_from(ARMABLE_SITES),
          mode=st.sampled_from(["nth", "first", "prob"]),
          n=st.integers(min_value=1, max_value=3),
          p=st.floats(min_value=0.1, max_value=0.9))
    def arm_fault(self, site, mode, n, p):
        kwargs = {"delay": 0.01} if site == "batcher.dispatch.delay" \
            else {}
        self.plan.arm(FaultRule(site=site, mode=mode, n=n, p=p, **kwargs))
        self.armed_sites.add(site)

    # -- traffic -------------------------------------------------------
    def _check_response(self, kind, index, response):
        assert isinstance(response, dict), \
            f"{kind}[{index}] non-object response: {response!r}"
        if response.get("ok"):
            if kind == "optimize" \
                    and self.armed_sites & OPTIMIZE_FAULT_SITES:
                return  # re-seeded lanes legitimately differ bitwise
            assert _normalized(kind, response["result"]) \
                == self.truths[kind][index], \
                f"{kind}[{index}] served result differs from solo run"
        else:
            error = response.get("error")
            assert isinstance(error, dict) and error.get("code") \
                and error.get("message"), \
                f"{kind}[{index}] failure lacks structured error"
            assert self.armed_sites, \
                f"{kind}[{index}] failed with no fault armed: {error}"

    @rule(kind=st.sampled_from(["delay", "critical_inductance",
                                "optimize"]),
          count=st.integers(min_value=2, max_value=5))
    def send_burst(self, kind, count):
        jobs = self.workload[kind][:count]
        documents = [job_to_dict(job) for job in jobs]
        try:
            responses = self.client.evaluate_many(documents)
        except socket.timeout:
            raise AssertionError(
                f"{kind} burst timed out — an admitted lane was "
                f"never answered")
        except (ServeClientError, http.client.HTTPException,
                OSError) as exc:
            # An explicit failure is an answer; only valid with faults.
            assert self.armed_sites, \
                f"{kind} burst failed with no fault armed: {exc}"
            return
        assert len(responses) == len(documents), \
            f"{kind} burst: {len(documents)} in, {len(responses)} out"
        for index, response in enumerate(responses):
            self._check_response(kind, index, response)

    @rule(index=st.integers(min_value=0, max_value=5))
    def send_single(self, index):
        job = self.workload["delay"][index]
        try:
            response = self.client.evaluate(job_to_dict(job))
        except socket.timeout:
            raise AssertionError(
                "single request timed out — admitted but never answered")
        except ServeClientError as exc:
            assert self.armed_sites, \
                f"single failed with no fault armed: {exc}"
            return
        except (http.client.HTTPException, OSError) as exc:
            assert self.armed_sites, \
                f"single transport error with no fault armed: {exc}"
            return
        self._check_response("delay", index, response)

    @rule()
    def scrape_metrics(self):
        try:
            payload = self.client.metrics()
        except (ServeClientError, http.client.HTTPException,
                OSError) as exc:
            assert self.armed_sites, \
                f"metrics scrape failed with no fault armed: {exc}"
            return
        self._check_metrics(payload)

    # -- invariants ----------------------------------------------------
    def _check_metrics(self, payload):
        recorded = sum(count for key, count in payload["outcomes"].items()
                       if not key.startswith("unknown:"))
        assert payload["requests_total"] == recorded, \
            f"metrics do not reconcile: requests_total=" \
            f"{payload['requests_total']} vs outcomes {payload['outcomes']}"

    def _check_cache(self):
        import json

        stale = self.plan.fired_sites().get("cache.put.stale_tmp", 0) \
            if self.plan is not None else 0
        tmp_files = self.cache.tmp_files()
        assert len(tmp_files) == stale, \
            f"{len(tmp_files)} orphaned .tmp files, expected {stale} " \
            f"(injected cache.put.stale_tmp events)"
        for path in self.cache._record_paths():
            with open(path, "r", encoding="utf-8") as handle:
                record = json.load(handle)  # torn record -> ValueError
            assert "result" in record, f"record {path.name} incomplete"

    @invariant()
    def server_thread_alive(self):
        if self.handle is not None:
            assert self.handle._thread.is_alive(), \
                "the server thread died mid-example"


FaultedServerMachine.TestCase.settings = settings(
    max_examples=MAX_EXAMPLES,
    stateful_step_count=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow,
                           HealthCheck.data_too_large,
                           HealthCheck.filter_too_much],
)

TestFaultedServer = FaultedServerMachine.TestCase
