"""Unit tests for the serve wire protocol: parsing, encoding, errors."""

import pytest

from repro import NODE_100NM, units
from repro.engine.jobs import (CriticalInductanceJob, DelayJob, OptimizeJob,
                               job_to_dict)
from repro.serve.protocol import (BadRequestError, DeadlineExceededError,
                                  EvaluationFailedError, QueueFullError,
                                  ServeError, ServiceClosedError,
                                  encode_error, encode_result, parse_request)


@pytest.fixture()
def line():
    return NODE_100NM.line_with_inductance(1.0 * units.NH_PER_MM)


@pytest.fixture()
def delay_document(line):
    return job_to_dict(DelayJob(line=line, driver=NODE_100NM.driver,
                                h=0.01, k=150.0))


class TestParse:
    def test_round_trips_every_served_kind(self, line):
        driver = NODE_100NM.driver
        jobs = [
            DelayJob(line=line, driver=driver, h=0.01, k=150.0, f=0.4),
            CriticalInductanceJob(line=line, driver=driver, h=0.01,
                                  k=150.0),
            OptimizeJob(line=line, driver=driver, initial=(0.01, 150.0)),
        ]
        for job in jobs:
            request = parse_request(job_to_dict(job))
            assert request.job == job
            assert request.kind == job.kind
            assert request.timeout is None
            assert request.no_cache is False

    def test_protocol_keys_ride_on_top_of_the_job(self, delay_document):
        delay_document.update(timeout=2.5, no_cache=True)
        request = parse_request(delay_document)
        assert request.timeout == 2.5
        assert request.no_cache is True
        # The job itself is untouched by the protocol fields: it equals
        # the job parsed from the bare document (same cache key).
        bare = {k: v for k, v in delay_document.items()
                if k not in ("timeout", "no_cache")}
        assert request.job == parse_request(bare).job

    def test_rejects_non_object(self):
        with pytest.raises(BadRequestError, match="JSON object"):
            parse_request([1, 2, 3])

    def test_rejects_unknown_kind(self):
        with pytest.raises(BadRequestError, match="unknown request kind"):
            parse_request({"kind": "transmogrify"})

    def test_rejects_missing_fields(self, delay_document):
        del delay_document["driver"]
        with pytest.raises(BadRequestError, match="invalid delay request"):
            parse_request(delay_document)

    def test_rejects_polish_with_newton(self, delay_document):
        delay_document["polish_with_newton"] = True
        with pytest.raises(BadRequestError, match="polish_with_newton"):
            parse_request(delay_document)

    def test_rejects_bad_timeouts(self, delay_document):
        for timeout in ("soon", 0.0, -1.0):
            document = dict(delay_document, timeout=timeout)
            with pytest.raises(BadRequestError, match="timeout"):
                parse_request(document)


class TestEncode:
    def test_success_body_shape(self):
        body = encode_result("delay", {"tau": 1e-11}, cache="miss",
                             batch_size=7)
        assert body == {"ok": True, "kind": "delay",
                        "result": {"tau": 1e-11}, "cache": "miss",
                        "batch_size": 7}

    def test_error_body_and_status_mapping(self):
        cases = [
            (BadRequestError("nope"), 400, "bad_request"),
            (QueueFullError("full"), 429, "queue_full"),
            (DeadlineExceededError("late"), 504, "deadline_exceeded"),
            (ServiceClosedError("bye"), 503, "shutting_down"),
            (EvaluationFailedError("diverged"), 500, "evaluation_failed"),
        ]
        for exc, expected_status, expected_code in cases:
            status, body = encode_error(exc)
            assert status == expected_status
            assert body["ok"] is False
            assert body["error"]["code"] == expected_code
            assert body["error"]["message"] in str(exc)

    def test_error_details_are_carried(self):
        exc = EvaluationFailedError("diverged",
                                    error_type="OptimizationError",
                                    dropped=None)
        _status, body = encode_error(exc)
        assert body["error"]["error_type"] == "OptimizationError"
        assert "dropped" not in body["error"]  # None details elided

    def test_every_protocol_error_is_a_serve_error(self):
        for cls in (BadRequestError, QueueFullError, DeadlineExceededError,
                    ServiceClosedError, EvaluationFailedError):
            assert issubclass(cls, ServeError)
