"""Unit tests for the exact and Padé transfer functions (paper Eqs. 1-2)."""

import cmath

import numpy as np
import pytest

from repro import (Stage, compute_moments, exact_transfer, pade_transfer,
                   units)
from repro.core.transfer import exact_transfer_via_abcd, transfer_error_at


class TestExactTransfer:
    def test_dc_gain_is_one(self, stage_rlc):
        transfer = exact_transfer(stage_rlc)
        assert transfer(0.0) == 1.0
        assert abs(transfer(1.0 + 0j)) == pytest.approx(1.0, rel=1e-6)

    def test_closed_form_matches_abcd_cascade(self, stage_rlc):
        """Eq. 1 and the explicit matrix product are the same function."""
        direct = exact_transfer(stage_rlc)
        cascade = exact_transfer_via_abcd(stage_rlc)
        for s in (1e9j, 1e10j, 1e9 + 5e9j, 5e9, -1e8 + 2e10j):
            assert direct(s) == pytest.approx(cascade(s), rel=1e-9)

    def test_magnitude_rolls_off_past_resonance(self, stage_rlc):
        """|H| may peak slightly above 1 near resonance (underdamped line)
        but must roll off far beyond it."""
        transfer = exact_transfer(stage_rlc)
        low = abs(transfer(1j * 1e6))
        resonant = abs(transfer(1j * 1e10))
        high = abs(transfer(1j * 1e12))
        assert low == pytest.approx(1.0, abs=1e-6)
        assert resonant < 3.0          # bounded resonant peaking
        assert high < 0.01 * low       # strong rolloff far past resonance

    def test_conjugate_symmetry(self, stage_rlc):
        """H(conj(s)) = conj(H(s)) for a real impulse response."""
        transfer = exact_transfer(stage_rlc)
        s = 2e9 + 7e9j
        assert transfer(s.conjugate()) == pytest.approx(
            transfer(s).conjugate(), rel=1e-12)

    def test_asymptotic_branch_continuous(self, node):
        """The large-u asymptote must join the cosh/sinh form smoothly."""
        # Build a stage long enough that real s drives Re(theta h) past the
        # threshold; compare just below it against the asymptote just above.
        line = node.line_with_inductance(1.0 * units.NH_PER_MM)
        stage = Stage(line=line, driver=node.driver, h=0.05, k=100.0)
        transfer = exact_transfer(stage)
        # Find s where theta*h ~ threshold by scanning real s.
        from repro.core.transfer import _ASYMPTOTIC_THRESHOLD

        def theta_h(s):
            return (cmath.sqrt((line.r + s * line.l) * (s * line.c))
                    * stage.h).real

        s_lo, s_hi = 1e6, 1e18
        for _ in range(80):
            s_mid = cmath.sqrt(s_lo * s_hi).real
            if theta_h(s_mid) < _ASYMPTOTIC_THRESHOLD:
                s_lo = s_mid
            else:
                s_hi = s_mid
        below = transfer(s_lo)
        above = transfer(s_hi)
        # Both sides are astronomically small but must agree in order of
        # magnitude sense; compare logs.
        if abs(below) > 0.0 and abs(above) > 0.0:
            assert np.log(abs(below)) == pytest.approx(
                np.log(abs(above)), rel=1e-3)

    def test_no_overflow_at_extreme_s(self, stage_rlc):
        transfer = exact_transfer(stage_rlc)
        value = transfer(1e16 + 0j)
        assert value == 0.0 or abs(value) < 1e-30


class TestPadeTransfer:
    def test_matches_exact_at_low_frequency(self, stage_rlc):
        """The Padé model shares the first two moments, so H agrees to
        O(s^3) near s = 0."""
        exact = exact_transfer(stage_rlc)
        pade = pade_transfer(stage_rlc)
        moments = compute_moments(stage_rlc)
        w_low = 0.01 / moments.b1
        assert pade(1j * w_low) == pytest.approx(exact(1j * w_low), rel=1e-3)

    def test_pade_form(self, stage_rlc):
        moments = compute_moments(stage_rlc)
        pade = pade_transfer(stage_rlc)
        s = 3e9j
        expected = 1.0 / (1.0 + s * moments.b1 + s * s * moments.b2)
        assert pade(s) == pytest.approx(expected, rel=1e-14)

    def test_error_metric_positive_at_high_frequency(self, stage_rlc):
        moments = compute_moments(stage_rlc)
        w_high = 10.0 / (moments.b2 ** 0.5)
        assert transfer_error_at(stage_rlc, 1j * w_high) > 0.0

    def test_error_small_at_low_frequency(self, stage_rlc):
        moments = compute_moments(stage_rlc)
        w_low = 0.001 / moments.b1
        assert transfer_error_at(stage_rlc, 1j * w_low) < 1e-6
