"""Unit tests for the batch-engine job specifications."""

import json

import pytest

from repro import (NODE_100NM, OptimizationError, OptimizerMethod, units)
from repro.engine import jobs as jobs_module
from repro.engine.jobs import (CriticalInductanceJob, DelayJob,
                               ExperimentJob, OptimizeJob, SweepJob,
                               TransientJob, canonical_json, job_from_dict,
                               job_to_dict, jsonify)


@pytest.fixture()
def line():
    return NODE_100NM.line_with_inductance(1.0 * units.NH_PER_MM)


@pytest.fixture()
def driver():
    return NODE_100NM.driver


class TestCanonicalForm:
    def test_jobs_are_hashable_and_equal_by_content(self, line, driver):
        a = OptimizeJob(line=line, driver=driver, f=0.5)
        b = OptimizeJob(line=line, driver=driver, f=0.5)
        assert a == b
        assert hash(a) == hash(b)
        assert a != OptimizeJob(line=line, driver=driver, f=0.6)

    def test_canonical_json_is_key_order_independent(self):
        assert (canonical_json({"b": 1, "a": [2.5, True]})
                == canonical_json({"a": [2.5, True], "b": 1}))

    def test_canonical_roundtrip_every_kind(self, line, driver):
        specs = [
            DelayJob(line=line, driver=driver, h=0.01, k=100.0),
            CriticalInductanceJob(line=line, driver=driver, h=0.01,
                                  k=100.0),
            OptimizeJob(line=line, driver=driver, initial=(0.01, 150.0),
                        method=OptimizerMethod.NEWTON),
            SweepJob(line_zero_l=line.with_inductance(0.0), driver=driver,
                     l_values=(0.0, 1e-6)),
            TransientJob(node_name="100nm", l_nh_per_mm=1.8),
            ExperimentJob.create("fig5", points=11),
        ]
        for job in specs:
            rebuilt = job_from_dict(job_to_dict(job))
            assert rebuilt == job
            assert canonical_json(rebuilt.canonical()) \
                == canonical_json(job.canonical())

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown job kind"):
            job_from_dict({"kind": "bogus"})

    def test_jsonify_handles_numpy(self):
        import numpy as np
        payload = jsonify({"a": np.float64(1.5), "b": np.arange(3),
                           "c": (1, 2), "d": OptimizerMethod.AUTO})
        assert payload == {"a": 1.5, "b": [0, 1, 2], "c": [1, 2],
                           "d": "auto"}
        json.dumps(payload)

    def test_jsonify_rejects_rich_objects(self, line):
        with pytest.raises(TypeError):
            jsonify(line)


class TestDelayJob:
    def test_matches_direct_threshold_delay(self, line, driver):
        from repro import Stage, threshold_delay
        job = DelayJob(line=line, driver=driver, h=0.01, k=150.0)
        result = job.run()
        direct = threshold_delay(
            Stage(line=line, driver=driver, h=0.01, k=150.0), 0.5,
            polish_with_newton=False)
        assert result["tau"] == direct.tau
        assert result["damping"] == direct.damping.value
        assert result["delay_per_length"] == direct.tau / 0.01


class TestCriticalInductanceJob:
    def test_matches_direct_critical_inductance(self, line, driver):
        from repro import Stage, critical_inductance
        job = CriticalInductanceJob(line=line, driver=driver, h=0.01,
                                    k=150.0)
        result = job.run()
        l_crit = critical_inductance(
            Stage(line=line, driver=driver, h=0.01, k=150.0))
        assert result["l_crit"] == l_crit
        assert result["l"] == line.l
        assert result["damping_margin"] == line.l / l_crit
        json.dumps(result)

    def test_margin_is_none_when_l_crit_not_positive(self, line, driver,
                                                     monkeypatch):
        """``l_crit <= 0`` cannot arise from physical parameters (RC
        poles at l = 0 are real), but the defensive branch must report a
        strict-JSON ``None`` margin rather than ``inf``."""
        monkeypatch.setattr(jobs_module, "critical_inductance",
                            lambda stage: -1e-7)
        job = CriticalInductanceJob(line=line, driver=driver, h=0.01,
                                    k=150.0)
        result = job.run()
        assert result["l_crit"] == -1e-7
        assert result["damping_margin"] is None
        assert "inf" in job.summary(result)
        json.dumps(result)


class TestOptimizeJob:
    def test_matches_direct_optimizer(self, line, driver):
        from repro import optimize_repeater
        result = OptimizeJob(line=line, driver=driver).run()
        direct = optimize_repeater(line, driver)
        assert result["h_opt"] == direct.h_opt
        assert result["k_opt"] == direct.k_opt
        assert result["iterations"] == direct.iterations
        assert result["retried"] is False

    def test_reseeds_from_rc_optimum_when_warm_start_fails(
            self, line, driver, monkeypatch):
        """Failure-recovery path: bad warm start -> RC-optimum re-seed."""
        from repro import rc_optimum
        rc_ref = rc_optimum(line, driver)
        rc_seed = (rc_ref.h_opt, rc_ref.k_opt)
        real_optimize = jobs_module.optimize_repeater
        calls = []

        def flaky(line_, driver_, f=0.5, *, initial=None, **kwargs):
            calls.append(initial)
            if initial != rc_seed:
                raise OptimizationError("poisoned warm start")
            return real_optimize(line_, driver_, f, initial=initial,
                                 **kwargs)

        monkeypatch.setattr(jobs_module, "optimize_repeater", flaky)
        result = OptimizeJob(line=line, driver=driver,
                             initial=(1e-4, 5.0)).run()
        assert result["retried"] is True
        assert calls == [(1e-4, 5.0), rc_seed]
        assert result["h_opt"] == pytest.approx(
            real_optimize(line, driver).h_opt, rel=1e-6)

    def test_no_reseed_without_warm_start(self, line, driver, monkeypatch):
        """With no explicit initial there is nothing to re-seed from."""
        def always_fails(*args, **kwargs):
            raise OptimizationError("nope")

        monkeypatch.setattr(jobs_module, "optimize_repeater", always_fails)
        with pytest.raises(OptimizationError):
            OptimizeJob(line=line, driver=driver).run()

    def test_reseed_can_be_disabled(self, line, driver, monkeypatch):
        def always_fails(*args, **kwargs):
            raise OptimizationError("nope")

        monkeypatch.setattr(jobs_module, "optimize_repeater", always_fails)
        with pytest.raises(OptimizationError):
            OptimizeJob(line=line, driver=driver, initial=(0.01, 100.0),
                        retry_reseed=False).run()


class TestSweepJob:
    def test_matches_sweep_inductance(self, driver):
        from repro import sweep_inductance
        line0 = NODE_100NM.line
        grid = (0.0, 0.5 * units.NH_PER_MM)
        result = SweepJob(line_zero_l=line0, driver=driver,
                          l_values=grid).run()
        direct = sweep_inductance(line0, driver, grid)
        assert result["h_opt"] == list(direct.h_opt)
        assert result["rc_reference"]["h_opt"] == direct.rc_reference.h_opt
        json.dumps(result)


class TestTransientJob:
    def test_runs_reduced_ring(self):
        """Tiny-budget ring run: exercises the sim + null-period branch."""
        result = TransientJob(node_name="100nm", l_nh_per_mm=1.8,
                              period_budget=6.0, steps_per_period=300,
                              segments=4).run()
        assert result["input_max"] > 1.0
        assert result["oscillates"] == (result["period"] is not None)
        json.dumps(result)


class TestExperimentJob:
    def test_create_canonicalizes_options(self):
        a = ExperimentJob.create("fig5", points=11, node="100nm")
        b = ExperimentJob.create("fig5", node="100nm", points=11)
        assert a == b
        assert a.options == {"points": 11, "node": "100nm"}

    def test_runs_registered_experiment(self):
        result = ExperimentJob.create("fig2").run()
        assert result["experiment_id"] == "fig2"
        assert result["rows"]
        json.dumps(result)
