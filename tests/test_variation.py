"""Unit tests for the statistical delay-variation module."""

import numpy as np
import pytest

from repro.analysis.variation import (delay_variation,
                                      stage_parameter_values)
from repro.errors import ParameterError


class TestVariation:
    def test_zero_spread_zero_variance(self, stage_rlc):
        result = delay_variation(stage_rlc, {"l": 0.0}, samples=16)
        assert result.std_tau == pytest.approx(0.0, abs=1e-18)
        assert result.mean_tau == pytest.approx(result.nominal_tau,
                                                rel=1e-9)

    def test_linearization_matches_monte_carlo(self, stage_rlc):
        """For modest spreads the analytic first-order sigma agrees with
        Monte Carlo within ~15%."""
        result = delay_variation(stage_rlc, {"l": 0.15, "c": 0.05},
                                 samples=600, seed=7)
        assert result.linearization_error < 0.15
        assert result.std_tau > 0.0

    def test_larger_spread_larger_sigma(self, stage_rlc):
        small = delay_variation(stage_rlc, {"l": 0.05}, samples=300, seed=3)
        large = delay_variation(stage_rlc, {"l": 0.25}, samples=300, seed=3)
        assert large.std_tau > small.std_tau

    def test_reproducible_with_seed(self, stage_rlc):
        a = delay_variation(stage_rlc, {"l": 0.2}, samples=50, seed=11)
        b = delay_variation(stage_rlc, {"l": 0.2}, samples=50, seed=11)
        assert np.array_equal(a.samples, b.samples)

    def test_custom_rng(self, stage_rlc):
        rng = np.random.default_rng(99)
        result = delay_variation(stage_rlc, {"l": 0.2}, samples=50, rng=rng)
        assert result.samples.shape == (50,)

    def test_three_sigma_fraction(self, stage_rlc):
        result = delay_variation(stage_rlc, {"l": 0.2}, samples=300, seed=5)
        assert result.three_sigma_fraction == pytest.approx(
            3.0 * result.std_tau / result.nominal_tau)

    def test_multi_parameter_variances_add(self, stage_rlc):
        """Independent parameters: linear sigmas add in quadrature."""
        only_l = delay_variation(stage_rlc, {"l": 0.2}, samples=8)
        only_c = delay_variation(stage_rlc, {"c": 0.1}, samples=8)
        both = delay_variation(stage_rlc, {"l": 0.2, "c": 0.1}, samples=8)
        quadrature = np.hypot(only_l.linear_std_tau, only_c.linear_std_tau)
        assert both.linear_std_tau == pytest.approx(quadrature, rel=1e-9)

    def test_parameter_values_helper(self, stage_rlc):
        values = stage_parameter_values(stage_rlc)
        assert values["h"] == stage_rlc.h
        assert values["l"] == stage_rlc.line.l
        assert len(values) == 8

    def test_validation(self, stage_rlc):
        with pytest.raises(ParameterError):
            delay_variation(stage_rlc, {"bogus": 0.1})
        with pytest.raises(ParameterError):
            delay_variation(stage_rlc, {"l": -0.1})
        with pytest.raises(ParameterError):
            delay_variation(stage_rlc, {"l": 0.1}, samples=1)
