"""CLI tests for ``repro-lint``: exit codes, JSON shape, baselines,
and the fingerprint-refresh release flow.

All runs go through :func:`repro.analysis.lint.cli.main` with explicit
``--root`` tmp trees, so nothing here depends on the invoking shell's
working directory.
"""

import json
import textwrap

from repro.analysis.lint import META_RULES, load_baseline
from repro.analysis.lint.cli import main


def write_tree(root, files):
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")


_CLEAN_TREE = {
    "src/repro/engine/report.py": """\
        import json

        def encode(payload):
            return json.dumps(payload, allow_nan=False)
    """,
}

_DIRTY_TREE = {
    "src/repro/engine/report.py": """\
        import json

        def encode(payload):
            return json.dumps(payload)

        def swallow(op):
            try:
                op()
            except Exception:
                pass
    """,
}


class TestRunExitCodes:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        write_tree(tmp_path, _CLEAN_TREE)
        code = main(["run", "--root", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out

    def test_findings_exit_one(self, tmp_path, capsys):
        write_tree(tmp_path, _DIRTY_TREE)
        code = main(["run", "--root", str(tmp_path)])
        assert code == 1
        out = capsys.readouterr().out
        assert "RPR004" in out and "RPR007" in out

    def test_unreadable_baseline_exits_two(self, tmp_path, capsys):
        write_tree(tmp_path, _CLEAN_TREE)
        bad = tmp_path / "baseline.json"
        bad.write_text('{"not": "a baseline"}', encoding="utf-8")
        code = main(["run", "--root", str(tmp_path),
                     "--baseline", str(bad)])
        assert code == 2
        assert "cannot read baseline" in capsys.readouterr().err

    def test_parse_error_exits_one(self, tmp_path, capsys):
        write_tree(tmp_path, {
            "src/repro/engine/broken.py": "def broken(:\n"})
        code = main(["run", "--root", str(tmp_path)])
        assert code == 1
        assert "ERROR parse" in capsys.readouterr().out


class TestJsonReport:
    def test_json_shape(self, tmp_path, capsys):
        write_tree(tmp_path, _DIRTY_TREE)
        code = main(["run", "--root", str(tmp_path),
                     "--format", "json"])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["tool"] == "repro-lint"
        assert payload["clean"] is False
        assert payload["exit_code"] == 1
        assert payload["files_scanned"] == 1
        assert payload["summary"]["error"] == len(payload["findings"])
        for finding in payload["findings"]:
            assert set(finding) == {"rule", "severity", "path", "line",
                                    "col", "message", "fingerprint"}
            assert finding["severity"] == "error"
        assert {f["rule"] for f in payload["findings"]} == \
            {"RPR004", "RPR007"}

    def test_out_writes_artifact_file(self, tmp_path, capsys):
        write_tree(tmp_path, _DIRTY_TREE)
        out = tmp_path / "lint-report.json"
        code = main(["run", "--root", str(tmp_path),
                     "--out", str(out)])
        assert code == 1
        capsys.readouterr()
        payload = json.loads(out.read_text(encoding="utf-8"))
        assert payload["tool"] == "repro-lint"
        assert payload["findings"]

    def test_suppressed_findings_carry_justifications(
            self, tmp_path, capsys):
        write_tree(tmp_path, {
            "src/repro/engine/report.py": """\
                import json

                def encode(payload):
                    # repro: ignore[RPR004] -- fixture: lax on purpose
                    return json.dumps(payload)
            """})
        code = main(["run", "--root", str(tmp_path),
                     "--format", "json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["suppressed"] == 1
        assert payload["suppressed"][0]["justification"] == \
            "fixture: lax on purpose"

    def test_malformed_suppression_fails_the_run(self, tmp_path, capsys):
        write_tree(tmp_path, {
            "src/repro/engine/report.py": """\
                import json

                def encode(payload):
                    # repro: ignore[RPR004] --
                    return json.dumps(payload)
            """})
        code = main(["run", "--root", str(tmp_path),
                     "--format", "json"])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        rules = {f["rule"] for f in payload["findings"]}
        # The empty justification is RPR900 AND the unsuppressed RPR004
        # still counts.
        assert rules == {"RPR900", "RPR004"}


class TestBaselineFlow:
    def test_record_then_consume(self, tmp_path, capsys):
        write_tree(tmp_path, _DIRTY_TREE)
        base = tmp_path / "baseline.json"
        assert main(["baseline", "--root", str(tmp_path),
                     "--out", str(base)]) == 0
        recorded = load_baseline(base)
        assert sum(recorded.values()) == 2
        capsys.readouterr()
        code = main(["run", "--root", str(tmp_path),
                     "--baseline", str(base), "--format", "json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"] == []
        assert payload["baseline_consumed"] == 2

    def test_new_finding_escapes_the_baseline(self, tmp_path, capsys):
        write_tree(tmp_path, _DIRTY_TREE)
        base = tmp_path / "baseline.json"
        main(["baseline", "--root", str(tmp_path), "--out", str(base)])
        capsys.readouterr()
        write_tree(tmp_path, {
            "src/repro/engine/extra.py": """\
                import json

                def encode_more(payload):
                    return json.dumps(payload, indent=2)
            """})
        code = main(["run", "--root", str(tmp_path),
                     "--baseline", str(base), "--format", "json"])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["findings"]) == 1
        assert payload["findings"][0]["path"] == \
            "src/repro/engine/extra.py"

    def test_baseline_without_flags_is_usage_error(
            self, tmp_path, capsys):
        write_tree(tmp_path, _CLEAN_TREE)
        code = main(["baseline", "--root", str(tmp_path)])
        assert code == 2
        assert "nothing to do" in capsys.readouterr().err


_SALTED_TREE = {
    "src/repro/__init__.py": '__version__ = "0.1.0"\n',
    "src/repro/engine/store.py": 'ENGINE_SCHEMA_VERSION = "s1"\n',
    "src/repro/core/kernels.py": "def solve(x):\n    return x * 2\n",
}


class TestFingerprintFlow:
    def test_update_fingerprint_blesses_the_tree(self, tmp_path, capsys):
        write_tree(tmp_path, _SALTED_TREE)
        assert main(["run", "--root", str(tmp_path)]) == 1  # missing
        capsys.readouterr()
        code = main(["baseline", "--root", str(tmp_path),
                     "--update-fingerprint"])
        assert code == 0
        assert "fingerprint artifact refreshed" in \
            capsys.readouterr().out
        assert main(["run", "--root", str(tmp_path)]) == 0

    def test_salted_edit_without_bump_fails(self, tmp_path, capsys):
        write_tree(tmp_path, _SALTED_TREE)
        main(["baseline", "--root", str(tmp_path),
              "--update-fingerprint"])
        write_tree(tmp_path, {
            "src/repro/core/kernels.py":
                "def solve(x):\n    return x * 3\n"})
        capsys.readouterr()
        code = main(["run", "--root", str(tmp_path)])
        assert code == 1
        assert "RPR003" in capsys.readouterr().out

    def test_bump_and_refresh_recovers(self, tmp_path, capsys):
        write_tree(tmp_path, _SALTED_TREE)
        main(["baseline", "--root", str(tmp_path),
              "--update-fingerprint"])
        write_tree(tmp_path, {
            "src/repro/core/kernels.py":
                "def solve(x):\n    return x * 3\n",
            "src/repro/__init__.py": '__version__ = "0.2.0"\n'})
        assert main(["run", "--root", str(tmp_path)]) == 1
        main(["baseline", "--root", str(tmp_path),
              "--update-fingerprint"])
        capsys.readouterr()
        assert main(["run", "--root", str(tmp_path)]) == 0


class TestExplain:
    def test_explains_every_shipped_rule(self, capsys):
        for rule_id in ("RPR001", "RPR002", "RPR003", "RPR004",
                        "RPR005", "RPR006", "RPR007"):
            assert main(["explain", rule_id]) == 0
            out = capsys.readouterr().out
            assert rule_id in out and "Origin" in out

    def test_explains_meta_rules(self, capsys):
        for rule_id in META_RULES:
            assert main(["explain", rule_id]) == 0
            assert rule_id in capsys.readouterr().out

    def test_unknown_rule_is_usage_error(self, capsys):
        assert main(["explain", "RPR999"]) == 2
        assert "unknown rule" in capsys.readouterr().err
