"""Tests for the inverter VTC and the rise/fall-time (slew) metrics."""

import numpy as np
import pytest

from repro import StepResponse, compute_moments
from repro.analysis import Waveform
from repro.errors import ParameterError
from repro.tech import NODE_100NM, calibrate_inverter
from repro.tech.characterize import inverter_vtc


class TestInverterVtc:
    @pytest.fixture(scope="class")
    def vtc(self):
        calibration = calibrate_inverter(NODE_100NM)
        return inverter_vtc(calibration, points=41)

    def test_rails(self, vtc):
        assert vtc.output_voltages[0] == pytest.approx(NODE_100NM.vdd,
                                                       abs=0.02)
        assert vtc.output_voltages[-1] == pytest.approx(0.0, abs=0.02)

    def test_monotone_decreasing(self, vtc):
        assert np.all(np.diff(vtc.output_voltages) <= 1e-6)

    def test_symmetric_threshold(self, vtc):
        assert vtc.symmetric
        assert vtc.switching_threshold == pytest.approx(
            0.5 * NODE_100NM.vdd, abs=0.05)

    def test_gain_exceeds_one(self, vtc):
        """A restoring logic gate needs |gain| > 1 at the threshold."""
        assert vtc.peak_gain > 2.0

    def test_noise_margins_positive_and_symmetric(self, vtc):
        assert vtc.noise_margin_low > 0.2 * NODE_100NM.vdd
        assert vtc.noise_margin_high > 0.2 * NODE_100NM.vdd
        assert vtc.noise_margin_low == pytest.approx(
            vtc.noise_margin_high, abs=0.1 * NODE_100NM.vdd)


class TestWaveformSlew:
    def exponential_rise(self, tau=1e-9):
        t = np.linspace(0.0, 10.0 * tau, 4000)
        return Waveform(t, 1.0 - np.exp(-t / tau))

    def test_exponential_rise_time(self):
        """10-90% rise of 1-exp(-t/tau) is tau ln 9."""
        tau = 1e-9
        waveform = self.exponential_rise(tau)
        assert waveform.rise_time(0.0, 1.0) == pytest.approx(
            tau * np.log(9.0), rel=1e-3)

    def test_exponential_fall_time(self):
        tau = 1e-9
        t = np.linspace(0.0, 10.0 * tau, 4000)
        waveform = Waveform(t, np.exp(-t / tau))
        assert waveform.fall_time(0.0, 1.0) == pytest.approx(
            tau * np.log(9.0), rel=1e-3)

    def test_custom_fractions(self):
        tau = 1e-9
        waveform = self.exponential_rise(tau)
        t_20_80 = waveform.rise_time(0.0, 1.0, fractions=(0.2, 0.8))
        assert t_20_80 == pytest.approx(tau * np.log(0.8 / 0.2), rel=1e-3)

    def test_fraction_validation(self):
        waveform = self.exponential_rise()
        with pytest.raises(ParameterError):
            waveform.rise_time(0.0, 1.0, fractions=(0.9, 0.1))
        with pytest.raises(ParameterError):
            waveform.fall_time(0.0, 1.0, fractions=(-0.1, 0.9))


class TestStepResponseRiseTime:
    def test_matches_sampled_waveform(self, stage_rlc):
        response = StepResponse.from_moments(compute_moments(stage_rlc))
        analytic = response.rise_time()
        t = np.linspace(0.0, 10.0 * response.settling_time(0.01), 20000)
        sampled = Waveform(t, response(t)).rise_time(0.0, 1.0)
        assert analytic == pytest.approx(sampled, rel=1e-3)

    def test_inductance_sharpens_the_edge(self, node, rc_opt):
        """More inductance -> steeper (more LC-like) leading edge relative
        to the delay: rise/delay ratio falls with l."""
        from repro import Stage, threshold_delay, units
        ratios = []
        for l_nh in (0.5, 2.0, 4.0):
            stage = Stage(line=node.line_with_inductance(
                l_nh * units.NH_PER_MM), driver=node.driver,
                h=rc_opt.h_opt, k=rc_opt.k_opt)
            response = StepResponse.from_moments(compute_moments(stage))
            tau = threshold_delay(stage, polish_with_newton=False).tau
            ratios.append(response.rise_time() / tau)
        assert ratios[0] > ratios[1] > ratios[2]

    def test_fraction_validation(self, stage_rc):
        response = StepResponse.from_moments(compute_moments(stage_rc))
        with pytest.raises(ValueError):
            response.rise_time(fractions=(0.9, 0.1))
