"""Tests for the batch executor: ordering, determinism, fault isolation."""

import pytest

from repro import NODE_100NM, OptimizerMethod, units
from repro.engine import BatchExecutor, ResultCache
from repro.engine.jobs import DelayJob, OptimizeJob

NH = units.NH_PER_MM


def optimize_jobs(l_values_nh):
    line0 = NODE_100NM.line
    return [OptimizeJob(line=line0.with_inductance(l * NH),
                        driver=NODE_100NM.driver)
            for l in l_values_nh]


def poisoned_job():
    """Deterministically non-convergent: 1-iteration Newton, no re-seed."""
    return OptimizeJob(line=NODE_100NM.line_with_inductance(2.0 * NH),
                       driver=NODE_100NM.driver,
                       method=OptimizerMethod.NEWTON,
                       initial=(1e-4, 5.0), max_iterations=1,
                       retry_reseed=False)


class TestSerialExecution:
    def test_results_in_submission_order(self):
        jobs = optimize_jobs([0.0, 1.0, 0.5])
        report = BatchExecutor(jobs=1).run(jobs)
        assert [o.job for o in report] == jobs
        assert report.all_ok
        h = [o.result["h_opt"] for o in report]
        assert h[1] > h[2] > h[0]  # h_opt grows with l

    def test_run_one(self):
        outcome = BatchExecutor().run_one(optimize_jobs([1.0])[0])
        assert outcome.ok
        assert outcome.unwrap()["h_opt"] > 0.0

    def test_rejects_bad_worker_count(self):
        with pytest.raises(ValueError):
            BatchExecutor(jobs=0)
        with pytest.raises(ValueError):
            BatchExecutor(jobs=2, chunksize=0)


class TestFaultIsolation:
    def test_poisoned_job_fails_alone(self):
        jobs = optimize_jobs([0.0, 1.0])
        jobs.insert(1, poisoned_job())
        report = BatchExecutor(jobs=1).run(jobs)
        assert [o.ok for o in report] == [True, False, True]
        failure = report.failures[0]
        assert failure.error_type == "OptimizationError"
        assert "did not converge" in failure.error
        assert "Traceback" in failure.traceback
        assert report.metrics.jobs_failed == 1

    def test_unwrap_raises_on_failure(self):
        outcome = BatchExecutor().run_one(poisoned_job())
        with pytest.raises(RuntimeError, match="OptimizationError"):
            outcome.unwrap()

    def test_failure_survives_process_pool(self):
        jobs = [poisoned_job()] + optimize_jobs([0.5])
        report = BatchExecutor(jobs=2).run(jobs)
        assert [o.ok for o in report] == [False, True]


class TestParallelDeterminism:
    def test_pool_matches_serial_bitwise(self):
        jobs = optimize_jobs([0.0, 0.5, 1.0, 1.5, 2.0, 2.5])
        serial = BatchExecutor(jobs=1).run(jobs)
        pooled = BatchExecutor(jobs=2).run(jobs)
        assert serial.to_payload() == pooled.to_payload()

    def test_explicit_chunksize(self):
        jobs = optimize_jobs([0.0, 0.5, 1.0, 1.5])
        report = BatchExecutor(jobs=2, chunksize=2).run(jobs)
        assert report.all_ok
        assert len(report) == 4


class TestCaching:
    def test_second_run_served_from_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        jobs = optimize_jobs([0.0, 0.5, 1.0])
        executor = BatchExecutor(jobs=1, cache=cache)
        first = executor.run(jobs)
        assert first.metrics.cache_hits == 0
        second = executor.run(jobs)
        assert second.metrics.cache_hits == len(jobs)
        assert second.metrics.cache_hit_rate == 1.0
        assert all(o.from_cache for o in second)
        assert first.to_payload() == second.to_payload()

    def test_failures_are_not_cached(self, tmp_path):
        cache = ResultCache(tmp_path)
        executor = BatchExecutor(jobs=1, cache=cache)
        executor.run([poisoned_job()])
        assert cache.stats().entries == 0
        second = executor.run([poisoned_job()])
        assert not second.all_ok
        assert second.metrics.cache_hits == 0

    def test_cache_shared_across_worker_counts(self, tmp_path):
        cache = ResultCache(tmp_path)
        jobs = optimize_jobs([0.0, 0.5, 1.0, 1.5])
        BatchExecutor(jobs=2, cache=cache).run(jobs)
        replay = BatchExecutor(jobs=1, cache=ResultCache(tmp_path)).run(jobs)
        assert replay.metrics.cache_hits == len(jobs)

    def test_delay_jobs_cache_too(self, tmp_path):
        line = NODE_100NM.line_with_inductance(1.0 * NH)
        job = DelayJob(line=line, driver=NODE_100NM.driver,
                       h=0.01, k=150.0)
        executor = BatchExecutor(cache=ResultCache(tmp_path))
        first = executor.run_one(job)
        second = executor.run_one(job)
        assert second.from_cache
        assert second.result == first.result


class TestWallTimeIsMetricsOnly:
    def test_wall_time_never_enters_cache_or_payload(self, tmp_path):
        """The envelope's ``wall_time`` feeds metrics and nothing else:
        cached records and ``to_payload`` are wall-clock free, so replay
        equality cannot depend on how fast a run happened to be."""
        import json

        cache = ResultCache(tmp_path)
        job = optimize_jobs([1.0])[0]
        executor = BatchExecutor(jobs=1, cache=cache)
        fresh = executor.run([job])
        assert fresh.outcomes[0].wall_time > 0.0  # metrics saw it

        def walk(node, path="record"):
            if isinstance(node, dict):
                for key, value in node.items():
                    assert key != "wall_time", f"{path}.{key}"
                    walk(value, f"{path}.{key}")
            elif isinstance(node, list):
                for i, value in enumerate(node):
                    walk(value, f"{path}[{i}]")

        record = json.loads(cache.path_for(cache.key(job)).read_text())
        walk(record)
        walk(fresh.to_payload(), "payload")

        cached = BatchExecutor(jobs=1, cache=cache).run([job])
        assert cached.outcomes[0].from_cache
        assert cached.outcomes[0].wall_time == 0.0  # nothing ran
        assert cached.to_payload() == fresh.to_payload()


class TestMetrics:
    def test_iteration_and_time_accounting(self):
        report = BatchExecutor().run(optimize_jobs([0.0, 1.0]))
        metrics = report.metrics
        assert metrics.jobs_total == 2
        assert metrics.newton_iterations > 0
        assert metrics.wall_time >= metrics.evaluation_time > 0.0
        assert "2 total, 2 ok, 0 failed" in metrics.format_summary()

    def test_reseed_counted_as_retry(self, monkeypatch):
        from repro import OptimizationError, rc_optimum
        from repro.engine import jobs as jobs_module
        line = NODE_100NM.line_with_inductance(1.0 * NH)
        rc_ref = rc_optimum(line, NODE_100NM.driver)
        rc_seed = (rc_ref.h_opt, rc_ref.k_opt)
        real = jobs_module.optimize_repeater

        def flaky(line_, driver_, f=0.5, *, initial=None, **kwargs):
            if initial != rc_seed:
                raise OptimizationError("poisoned warm start")
            return real(line_, driver_, f, initial=initial, **kwargs)

        monkeypatch.setattr(jobs_module, "optimize_repeater", flaky)
        job = OptimizeJob(line=line, driver=NODE_100NM.driver,
                          initial=(1e-4, 5.0))
        report = BatchExecutor().run([job])
        assert report.all_ok
        assert report.metrics.retries == 1
