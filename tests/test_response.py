"""Unit tests for the two-pole step response and its metrics."""

import math

import numpy as np
import pytest

from repro import (Damping, StepResponse, canonical_response, compute_moments,
                   compute_poles)
from repro.verify import unit_tolerance


class TestEvaluation:
    def test_starts_at_zero_settles_at_one(self, stage_rlc):
        response = StepResponse.from_moments(compute_moments(stage_rlc))
        assert response(0.0) == pytest.approx(
            0.0, abs=unit_tolerance("response.initial_value.abs"))
        t_settle = response.settling_time(1e-6)
        assert response(5.0 * t_settle) == pytest.approx(
            1.0, abs=unit_tolerance("response.settles_to_one.abs"))

    def test_scalar_and_array_evaluation_agree(self, stage_rlc):
        response = StepResponse.from_moments(compute_moments(stage_rlc))
        t = np.linspace(0.0, 1e-9, 7)
        array = response(t)
        scalars = [response(float(ti)) for ti in t]
        assert array == pytest.approx(scalars)

    def test_derivative_matches_finite_difference(self, stage_rlc):
        response = StepResponse.from_moments(compute_moments(stage_rlc))
        t0 = 1e-10
        eps = 1e-15
        fd = (response(t0 + eps) - response(t0 - eps)) / (2.0 * eps)
        assert response.derivative(t0) == pytest.approx(
            fd, rel=unit_tolerance("response.derivative_fd.rel"))

    def test_initial_slope_zero(self, stage_rlc):
        """A two-pole response has zero slope at t = 0 (second order)."""
        response = StepResponse.from_moments(compute_moments(stage_rlc))
        assert response.derivative(0.0) == pytest.approx(
            0.0, abs=unit_tolerance("response.initial_slope.abs"))

    def test_from_poles_equals_from_moments(self, stage_rlc):
        moments = compute_moments(stage_rlc)
        a = StepResponse.from_moments(moments)
        b = StepResponse.from_poles(compute_poles(moments))
        t = np.linspace(0.0, 1e-9, 5)
        assert a(t) == pytest.approx(b(t))


class TestCanonical:
    def test_critically_damped_closed_form(self):
        wn = 1e9
        response = canonical_response(1.0, wn)
        t = np.linspace(1e-12, 10.0 / wn, 50)
        expected = 1.0 - (1.0 + wn * t) * np.exp(-wn * t)
        assert response(t) == pytest.approx(
            expected, abs=unit_tolerance("response.closed_form.abs"))

    def test_underdamped_closed_form(self):
        zeta, wn = 0.3, 1e9
        response = canonical_response(zeta, wn)
        wd = wn * math.sqrt(1.0 - zeta * zeta)
        t = np.linspace(1e-12, 20.0 / wn, 80)
        envelope = np.exp(-zeta * wn * t) / math.sqrt(1.0 - zeta * zeta)
        phase = math.acos(zeta)
        expected = 1.0 - envelope * np.sin(wd * t + phase)
        assert response(t) == pytest.approx(
            expected, abs=unit_tolerance("response.closed_form.abs"))

    def test_rejects_invalid_parameters(self):
        with pytest.raises(ValueError):
            canonical_response(0.0, 1e9)
        with pytest.raises(ValueError):
            canonical_response(0.5, -1.0)


class TestMetrics:
    def test_overdamped_monotonic_no_overshoot(self, stage_rc):
        response = StepResponse.from_moments(compute_moments(stage_rc))
        assert response.damping is Damping.OVERDAMPED
        assert response.overshoot() == 0.0
        assert response.undershoot() == 0.0
        t = np.linspace(0.0, 5.0 * response.settling_time(), 500)
        assert np.all(np.diff(response(t)) >= -1e-12)
        assert math.isinf(response.peak_time())

    def test_underdamped_overshoot_formula(self):
        """Overshoot of a canonical 2nd-order system: exp(-pi zeta/sqrt(1-z^2))."""
        for zeta in (0.2, 0.5, 0.7):
            response = canonical_response(zeta, 1e9)
            expected = math.exp(-math.pi * zeta / math.sqrt(1 - zeta * zeta))
            assert response.overshoot() == pytest.approx(
                expected,
                rel=unit_tolerance("response.canonical_overshoot.rel"))

    def test_overshoot_matches_sampled_peak(self, stage_rlc):
        response = StepResponse.from_moments(compute_moments(stage_rlc))
        t = np.linspace(0.0, 6.0 * response.settling_time(0.01), 20000)
        sampled_peak = float(response(t).max()) - 1.0
        assert response.overshoot() == pytest.approx(
            sampled_peak, rel=unit_tolerance("response.overshoot_sampled.rel"))

    def test_undershoot_is_square_of_overshoot(self, stage_rlc):
        """First undershoot depth = overshoot^2 for a two-pole system."""
        response = StepResponse.from_moments(compute_moments(stage_rlc))
        assert response.undershoot() == pytest.approx(
            response.overshoot() ** 2,
            rel=unit_tolerance("response.undershoot_square.rel"))

    def test_peak_time_is_pi_over_wd(self, stage_rlc):
        response = StepResponse.from_moments(compute_moments(stage_rlc))
        t_peak = response.peak_time()
        assert t_peak == pytest.approx(math.pi / response.damped_frequency)
        # The derivative vanishes at the peak.
        assert response.derivative(t_peak) == pytest.approx(
            0.0, abs=unit_tolerance("response.derivative_at_peak.abs"))

    def test_settling_time_envelope_bound(self, stage_rlc):
        response = StepResponse.from_moments(compute_moments(stage_rlc))
        t_settle = response.settling_time(0.02)
        t = np.linspace(t_settle, 3.0 * t_settle, 200)
        assert np.all(np.abs(response(t) - 1.0) <= 0.02 + 1e-9)

    def test_settling_time_validates_tolerance(self, stage_rlc):
        response = StepResponse.from_moments(compute_moments(stage_rlc))
        with pytest.raises(ValueError):
            response.settling_time(0.0)
        with pytest.raises(ValueError):
            response.settling_time(1.5)

    def test_sample_helper(self, stage_rc):
        response = StepResponse.from_moments(compute_moments(stage_rc))
        t, v = response.sample(1e-9, num=64)
        assert t.shape == v.shape == (64,)
        assert t[0] == 0.0 and t[-1] == pytest.approx(1e-9)
