"""Tests for the adaptive-timestep transient solver."""

import numpy as np
import pytest

from repro.circuits import (Circuit, GROUND, Pulse, Step, TransientSolver,
                            simulate)
from repro.errors import SimulationError


def rc_circuit(r=1000.0, c=1e-12):
    circuit = Circuit("rc")
    circuit.voltage_source("V1", "in", GROUND, Step(level=1.0))
    circuit.resistor("R1", "in", "out", r)
    circuit.capacitor("C1", "out", GROUND, c)
    return circuit


class TestAdaptiveAccuracy:
    def test_rc_charge_matches_analytic(self):
        r, c = 1000.0, 1e-12
        tau = r * c
        solver = TransientSolver(rc_circuit(r, c))
        result = solver.run_adaptive(8.0 * tau, dt_initial=tau / 50.0,
                                     dt_min=tau / 5000.0, dt_max=tau,
                                     lte_reltol=1e-4)
        expected = 1.0 - np.exp(-result.time / tau)
        assert result.voltage("out") == pytest.approx(expected, abs=1e-3)

    def test_steps_grow_in_quiet_stretch(self):
        """After the edge settles, accepted steps expand toward dt_max."""
        r, c = 1000.0, 1e-12
        tau = r * c
        solver = TransientSolver(rc_circuit(r, c))
        result = solver.run_adaptive(40.0 * tau, dt_initial=tau / 50.0,
                                     dt_min=tau / 5000.0, dt_max=5.0 * tau)
        steps = np.diff(result.time)
        assert steps[-1] > 20.0 * steps[0]

    def test_fewer_steps_than_fixed_at_equal_accuracy(self):
        """A pulse train with long plateaus: adaptive wins on step count."""
        circuit = Circuit("pulse-rc")
        circuit.voltage_source(
            "V1", "in", GROUND,
            Pulse(v1=0.0, v2=1.0, delay=0.0, rise=1e-11, fall=1e-11,
                  width=4e-9, period=10e-9))
        circuit.resistor("R1", "in", "out", 1000.0)
        circuit.capacitor("C1", "out", GROUND, 1e-13)
        solver = TransientSolver(circuit)
        adaptive = solver.run_adaptive(20e-9, dt_initial=1e-11,
                                       dt_min=1e-13, dt_max=5e-10,
                                       lte_reltol=1e-3)
        fixed = simulate(circuit, 20e-9, 1e-11)
        assert adaptive.time.size < 0.5 * fixed.time.size
        # Same endpoint within tolerance.
        assert adaptive.voltage("out")[-1] == pytest.approx(
            fixed.voltage("out")[-1], abs=1e-3)

    def test_underdamped_rlc_tracks_fixed_run(self):
        circuit = Circuit("rlc")
        circuit.voltage_source("V1", "in", GROUND, Step(level=1.0))
        circuit.resistor("R1", "in", "a", 10.0)
        circuit.inductor("L1", "a", "b", 1e-9)
        circuit.capacitor("C1", "b", GROUND, 1e-12)
        period = 2.0 * np.pi * np.sqrt(1e-9 * 1e-12)
        solver = TransientSolver(circuit)
        adaptive = solver.run_adaptive(6.0 * period,
                                       dt_initial=period / 100.0,
                                       dt_min=period / 10000.0,
                                       dt_max=period / 10.0,
                                       lte_reltol=1e-4)
        fixed = simulate(circuit, 6.0 * period, period / 800.0)
        v_adaptive = np.interp(fixed.time, adaptive.time,
                               adaptive.voltage("b"))
        assert v_adaptive == pytest.approx(fixed.voltage("b"), abs=5e-3)

    def test_nonlinear_inverter_edge(self):
        """Adaptive stepping carries a MOSFET inverter through its edge."""
        from repro.tech import calibrate_inverter
        from repro.circuits import add_mosfet_inverter
        from repro import NODE_100NM
        calibration = calibrate_inverter(NODE_100NM)
        circuit = Circuit("inv")
        circuit.voltage_source("VDD", "vdd", GROUND, calibration.vdd)
        circuit.voltage_source(
            "VIN", "a", GROUND,
            Step(level=calibration.vdd, delay=1e-10, rise=2e-11))
        add_mosfet_inverter(circuit, "inv", "a", "b", "vdd", calibration,
                            k=10.0)
        circuit.capacitor("CL", "b", GROUND, 50 * NODE_100NM.driver.c_0)
        solver = TransientSolver(circuit)
        result = solver.run_adaptive(
            2e-9, dt_initial=5e-12, dt_min=1e-14, dt_max=1e-10,
            initial_voltages={"b": calibration.vdd, "vdd": calibration.vdd})
        v_out = result.voltage("b")
        assert v_out[0] == pytest.approx(calibration.vdd, abs=0.05)
        assert v_out[-1] == pytest.approx(0.0, abs=0.05)


class TestAdaptiveValidation:
    def test_rejects_bad_bounds(self):
        solver = TransientSolver(rc_circuit())
        with pytest.raises(SimulationError):
            solver.run_adaptive(1e-9, dt_initial=1e-12, dt_min=1e-11,
                                dt_max=1e-10)
        with pytest.raises(SimulationError):
            solver.run_adaptive(0.0, dt_initial=1e-12, dt_min=1e-13,
                                dt_max=1e-11)

    def test_time_grid_strictly_increasing_to_t_end(self):
        solver = TransientSolver(rc_circuit())
        result = solver.run_adaptive(5e-9, dt_initial=1e-11, dt_min=1e-13,
                                     dt_max=1e-9)
        assert np.all(np.diff(result.time) > 0.0)
        assert result.time[-1] == pytest.approx(5e-9, rel=1e-9)
