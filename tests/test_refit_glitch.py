"""Tests for the IF-ansatz refit and the glitch-activity analysis."""

import numpy as np
import pytest

from repro import units
from repro.analysis import Waveform
from repro.analysis.glitch import (GlitchReport, compare_activity,
                                   switching_rate, transition_count)
from repro.baselines.refit import refit_if_coefficients
from repro.errors import ParameterError


class TestRefit:
    @pytest.fixture(scope="class")
    def refit_100nm(self):
        from repro import NODE_100NM
        ls = np.linspace(0.0, 5.0, 9) * units.NH_PER_MM
        return refit_if_coefficients(NODE_100NM.line, NODE_100NM.driver,
                                     l_values=ls)

    def test_ansatz_fits_exact_optimizer_tightly(self, refit_100nm):
        """The (1 + a T^3)^b form captures the exact optima to ~1%."""
        assert refit_100nm.max_residual_h < 0.02
        assert refit_100nm.max_residual_k < 0.02

    def test_predictions_match_stored_ratios(self, refit_100nm):
        r = refit_100nm
        for t, h_ratio in zip(r.t_values[1:], r.h_ratios[1:]):
            assert r.predict_h_ratio(float(t)) == pytest.approx(
                float(h_ratio), rel=0.02)

    def test_ratios_monotone(self, refit_100nm):
        assert np.all(np.diff(refit_100nm.h_ratios) > 0.0)
        assert np.all(np.diff(refit_100nm.k_ratios) > 0.0)

    def test_coefficients_not_technology_portable(self, refit_100nm):
        """The fitted coefficients differ across nodes — quantifying the
        paper's critique that curve-fitted formulas have limited
        validity: the *form* transfers, the coefficients do not."""
        from repro import NODE_250NM
        ls = np.linspace(0.0, 5.0, 9) * units.NH_PER_MM
        refit_250 = refit_if_coefficients(NODE_250NM.line,
                                          NODE_250NM.driver, l_values=ls)
        assert refit_250.a_h != pytest.approx(refit_100nm.a_h, rel=0.1)

    def test_needs_enough_points(self):
        from repro import NODE_100NM
        with pytest.raises(ParameterError):
            refit_if_coefficients(NODE_100NM.line, NODE_100NM.driver,
                                  l_values=[0.0, 1e-6])


class TestGlitchAnalysis:
    def square_wave(self, frequency, cycles=10.0, duty=0.5):
        period = 1.0 / frequency
        t = np.linspace(0.0, cycles * period, int(400 * cycles) + 1)
        values = ((t % period) < duty * period).astype(float)
        return Waveform(t, values)

    def test_transition_count_of_square_wave(self):
        waveform = self.square_wave(1e9, cycles=10.0)
        # ~10 rising + 10 falling edges through 0.5.
        assert transition_count(waveform, 0.5) == pytest.approx(20, abs=2)

    def test_switching_rate(self):
        waveform = self.square_wave(1e9, cycles=10.0)
        assert switching_rate(waveform, 0.5) == pytest.approx(2e9, rel=0.1)

    def test_activity_multiplier(self):
        slow = self.square_wave(1e9, cycles=10.0)
        fast = self.square_wave(2.5e9, cycles=25.0)
        report = compare_activity(slow, fast, 0.5)
        assert report.activity_multiplier == pytest.approx(2.5, rel=0.15)
        assert report.glitching

    def test_identical_waveforms_not_glitching(self):
        waveform = self.square_wave(1e9)
        report = compare_activity(waveform, waveform, 0.5)
        assert report.activity_multiplier == pytest.approx(1.0, rel=1e-6)
        assert not report.glitching

    def test_zero_baseline_raises(self):
        t = np.linspace(0, 1e-9, 100)
        flat = Waveform(t, np.zeros(100))
        busy = self.square_wave(1e9)
        report = compare_activity(flat, busy, 0.5)
        with pytest.raises(ParameterError):
            _ = report.activity_multiplier

    def test_settle_fraction_validated(self):
        waveform = self.square_wave(1e9)
        with pytest.raises(ParameterError):
            compare_activity(waveform, waveform, 0.5, settle_fraction=1.0)

    def test_ring_oscillator_glitch_power(self):
        """End-to-end: the Fig. 11 false-switching onset roughly doubles
        the ring's switching activity (dynamic power)."""
        from repro.experiments.ring import run_ring
        clean = run_ring("100nm", 1.6, segments=10, period_budget=9.0,
                         steps_per_period=450)
        glitchy = run_ring("100nm", 2.6, segments=10, period_budget=9.0,
                           steps_per_period=450)
        vdd = clean.oscillator.vdd
        report = compare_activity(clean.output_waveform,
                                  glitchy.output_waveform, 0.5 * vdd)
        assert report.glitching
        assert report.activity_multiplier > 1.5
