"""Property tests for the array-first kernels (Hypothesis).

Light invariants (bitwise batch-vs-scalar moments, permutation and
singleton invariance of the batched delay solve) run in tier-1; the
heavy cross-regime comparison against the independent Brent reference
solver is marked ``slow`` and runs in the CI verify job.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import compute_moments, threshold_delay
from repro.core import brent_threshold_delay
from repro.core.kernels import (StageBatch, compute_moments_v,
                                critical_inductance_v, threshold_delay_v)
from repro.verify import unit_tolerance

from tests.strategies import regime_stages, stage_batches, thresholds


class TestBatchScalarBitwise:
    @given(stages=stage_batches)
    @settings(max_examples=50, deadline=None)
    def test_moments_bitwise(self, stages):
        batch = StageBatch.from_stages(stages)
        moments = compute_moments_v(batch)
        for i, stage in enumerate(stages):
            assert moments.moments(i) == compute_moments(stage), i

    @given(stages=stage_batches)
    @settings(max_examples=25, deadline=None)
    def test_critical_inductance_bitwise(self, stages):
        from repro import critical_inductance
        batch = StageBatch.from_stages(stages)
        l_crit = critical_inductance_v(batch)
        for i, stage in enumerate(stages):
            assert l_crit[i] == critical_inductance(stage), i

    @given(stage=regime_stages, f=thresholds)
    @settings(max_examples=50, deadline=None)
    def test_scalar_shim_is_batch_of_one(self, stage, f):
        scalar = threshold_delay(stage, f, polish_with_newton=False)
        batched = threshold_delay_v(StageBatch.from_stages([stage]), f)
        assert batched.tau[0] == scalar.tau
        assert batched.damping_values()[0] == scalar.damping


class TestBatchInvariance:
    @given(stages=stage_batches, f=thresholds,
           seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_permutation_invariance(self, stages, f, seed):
        order = np.random.RandomState(seed).permutation(len(stages))
        forward = threshold_delay_v(StageBatch.from_stages(stages), f)
        permuted = threshold_delay_v(
            StageBatch.from_stages([stages[i] for i in order]), f)
        assert np.array_equal(forward.tau[order], permuted.tau)
        assert np.array_equal(forward.damping[order], permuted.damping)

    @given(stages=stage_batches, f=thresholds)
    @settings(max_examples=25, deadline=None)
    def test_singleton_invariance(self, stages, f):
        full = threshold_delay_v(StageBatch.from_stages(stages), f)
        for i, stage in enumerate(stages):
            alone = threshold_delay_v(StageBatch.from_stages([stage]), f)
            assert alone.tau[0] == full.tau[i], i


@pytest.mark.slow
class TestBrentReference:
    """The independent Brent refiner agrees with the masked hybrid.

    This is the cross-check that the vectorized solver is not just
    self-consistent: both solvers bracket the same first crossing and
    refine it with different methods, so agreement is bounded by the
    solvers' stopping tolerances alone (ledger
    ``kernels.brent_vs_vector.rel``), across all three damping regimes
    and the full threshold range.
    """

    @given(stages=stage_batches, f=thresholds)
    @settings(max_examples=100, deadline=None)
    def test_batch_agrees_with_brent(self, stages, f):
        rtol = unit_tolerance("kernels.brent_vs_vector.rel")
        solved = threshold_delay_v(StageBatch.from_stages(stages), f)
        for i, stage in enumerate(stages):
            ref = brent_threshold_delay(stage, f)
            assert solved.tau[i] == pytest.approx(ref.tau, rel=rtol), i
            assert solved.damping_values()[i] == ref.damping, i
