"""Unit tests for the Talbot numerical inverse Laplace transform."""

import math

import numpy as np
import pytest

from repro import Stage, compute_moments, units
from repro.analysis.laplace import (inverse_at_times, step_response_exact,
                                    talbot_inverse)
from repro.core.response import StepResponse
from repro.errors import ParameterError


class TestKnownTransforms:
    def test_inverse_of_one_over_s_is_one(self):
        for t in (1e-12, 1e-9, 1.0):
            assert talbot_inverse(lambda s: 1.0 / s, t) == pytest.approx(
                1.0, rel=1e-8)

    def test_inverse_of_one_over_s_squared_is_t(self):
        for t in (1e-9, 3e-9):
            assert talbot_inverse(lambda s: 1.0 / (s * s), t) == \
                pytest.approx(t, rel=1e-8)

    def test_exponential_decay(self):
        a = 2e9
        for t in (0.1e-9, 1e-9, 3e-9):
            value = talbot_inverse(lambda s: 1.0 / (s + a), t)
            assert value == pytest.approx(math.exp(-a * t), rel=1e-6)

    def test_damped_cosine(self):
        """L{e^{-at} cos(w t)} = (s + a)/((s + a)^2 + w^2)."""
        a, w = 5e8, 4e9

        def transform(s):
            return (s + a) / ((s + a) ** 2 + w ** 2)

        for t in (0.2e-9, 1e-9, 2e-9):
            expected = math.exp(-a * t) * math.cos(w * t)
            assert talbot_inverse(transform, t, terms=64) == pytest.approx(
                expected, abs=1e-4)

    def test_accuracy_improves_with_terms(self):
        a, w = 5e8, 6e9

        def transform(s):
            return (s + a) / ((s + a) ** 2 + w ** 2)

        t = 2e-9
        expected = math.exp(-a * t) * math.cos(w * t)
        coarse = abs(talbot_inverse(transform, t, terms=12) - expected)
        fine = abs(talbot_inverse(transform, t, terms=64) - expected)
        assert fine < coarse

    def test_validation(self):
        with pytest.raises(ParameterError):
            talbot_inverse(lambda s: 1.0 / s, 0.0)
        with pytest.raises(ParameterError):
            talbot_inverse(lambda s: 1.0 / s, 1e-9, terms=2)

    def test_vector_wrapper(self):
        times = [1e-10, 2e-10, 4e-10]
        values = inverse_at_times(lambda s: 1.0 / s, times)
        assert values == pytest.approx(np.ones(3), rel=1e-8)


class TestStepResponses:
    def test_two_pole_transform_matches_analytic_response(self, stage_rlc):
        """Inverting the Padé H(s)/s must reproduce the closed-form
        two-pole step response — validates Talbot on the exact use case."""
        moments = compute_moments(stage_rlc)
        response = StepResponse.from_moments(moments)

        def transform(s):
            return 1.0 / (s * (1.0 + s * moments.b1 + s * s * moments.b2))

        t_scale = math.sqrt(moments.b2)
        for factor in (0.3, 1.0, 3.0, 10.0):
            t = factor * t_scale
            assert talbot_inverse(transform, t, terms=48) == pytest.approx(
                response(t), abs=1e-6)

    def test_exact_step_response_reasonable(self, node, rc_opt):
        """Exact response: starts near 0, settles to 1, stays bounded."""
        line = node.line_with_inductance(1.0 * units.NH_PER_MM)
        stage = Stage(line=line, driver=node.driver,
                      h=rc_opt.h_opt, k=rc_opt.k_opt)
        moments = compute_moments(stage)
        t = np.linspace(0.0, 20.0 * moments.b1, 60)
        v = step_response_exact(stage, t)
        assert v[0] == 0.0
        assert v[-1] == pytest.approx(1.0, abs=1e-2)
        assert np.max(np.abs(v)) < 2.5

    def test_exact_vs_pade_delay_gap_is_small(self, node, rc_opt):
        """The two-pole 50% delay is within ~15% of the exact response
        (the model error the paper accepts)."""
        from repro import threshold_delay
        from repro.analysis import Waveform
        line = node.line_with_inductance(1.0 * units.NH_PER_MM)
        stage = Stage(line=line, driver=node.driver,
                      h=rc_opt.h_opt, k=rc_opt.k_opt)
        tau_pade = threshold_delay(stage).tau
        t = np.linspace(1e-13, 5.0 * tau_pade, 400)
        exact = Waveform(t, step_response_exact(stage, t))
        tau_exact = exact.first_crossing(0.5)
        assert tau_pade == pytest.approx(tau_exact, rel=0.15)
