"""End-to-end tests of the ``repro-verify`` command line."""

import json

import pytest

from repro.verify import case_for_regime, dump_case_matrix
from repro.verify.cli import main

#: Cheap oracle subset so CLI tests stay fast.
ORACLES = "two_pole,elmore,kahng_muddu,talbot"


@pytest.fixture
def matrix_file(tmp_path):
    cases = [case_for_regime("250nm", regime, f)
             for regime in ("overdamped", "underdamped")
             for f in (0.2, 0.5)]
    path = tmp_path / "matrix.json"
    path.write_text(json.dumps(dump_case_matrix(cases)), encoding="utf-8")
    return str(path)


class TestRun:
    def test_clean_run_exits_zero(self, matrix_file, tmp_path, capsys):
        out = tmp_path / "report.json"
        code = main(["run", "--matrix", matrix_file, "--oracles", ORACLES,
                     "--out", str(out)])
        assert code == 0
        assert "0 violations" in capsys.readouterr().out
        report = json.loads(out.read_text(encoding="utf-8"))
        assert report["schema"] == "repro-verify-report/1"
        assert report["passed"] is True

    def test_run_deterministic_across_workers(self, matrix_file, tmp_path):
        outs = []
        for jobs, name in ((1, "serial.json"), (2, "pool.json")):
            out = tmp_path / name
            assert main(["run", "--matrix", matrix_file,
                         "--oracles", ORACLES, "--jobs", str(jobs),
                         "--out", str(out)]) == 0
            outs.append(out.read_text(encoding="utf-8"))
        assert outs[0] == outs[1]

    def test_unknown_oracle_exits_two(self, matrix_file, capsys):
        code = main(["run", "--matrix", matrix_file, "--oracles", "spice"])
        assert code == 2
        assert "unknown oracle" in capsys.readouterr().err

    def test_bad_jobs_exits_two(self, matrix_file):
        assert main(["run", "--matrix", matrix_file, "--jobs", "0"]) == 2


class TestBlessAndDiff:
    def test_bless_then_diff_clean(self, matrix_file, tmp_path, capsys):
        golden = tmp_path / "golden.json"
        assert main(["bless", "--matrix", matrix_file, "--oracles", ORACLES,
                     "--golden", str(golden)]) == 0
        assert golden.exists()
        assert main(["diff", "--matrix", matrix_file, "--oracles", ORACLES,
                     "--golden", str(golden)]) == 0
        assert "all observations match" in capsys.readouterr().out

    def test_diff_against_empty_store_exits_one(self, matrix_file, tmp_path,
                                                capsys):
        code = main(["diff", "--matrix", matrix_file, "--oracles", ORACLES,
                     "--golden", str(tmp_path / "absent.json")])
        assert code == 1
        assert "golden missing" in capsys.readouterr().out

    def test_diff_detects_tampered_fixture(self, matrix_file, tmp_path,
                                           capsys):
        golden = tmp_path / "golden.json"
        main(["bless", "--matrix", matrix_file, "--oracles", "two_pole",
              "--golden", str(golden)])
        data = json.loads(golden.read_text(encoding="utf-8"))
        key = next(iter(data["entries"]))
        data["entries"][key]["observation"]["tau"] *= 1.001
        golden.write_text(json.dumps(data), encoding="utf-8")
        code = main(["diff", "--matrix", matrix_file, "--oracles", "two_pole",
                     "--golden", str(golden)])
        assert code == 1
        assert "golden changed" in capsys.readouterr().out


class TestCacheOptIn:
    def test_cache_off_by_default_on_by_flag(self, matrix_file, tmp_path):
        cache_dir = tmp_path / "cache"
        assert main(["run", "--matrix", matrix_file,
                     "--oracles", "two_pole"]) == 0
        assert not cache_dir.exists()
        assert main(["run", "--matrix", matrix_file, "--oracles", "two_pole",
                     "--cache-dir", str(cache_dir)]) == 0
        assert any(cache_dir.rglob("*.json"))
