"""Tests for JSON/CSV manifest parsing."""

import json

import pytest

from repro import NODE_100NM, OptimizerMethod, units
from repro.engine.jobs import (DelayJob, ExperimentJob, OptimizeJob,
                               SweepJob, TransientJob)
from repro.engine.manifest import (ManifestError, job_from_entry,
                                   load_manifest)

NH = units.NH_PER_MM


class TestEntryResolution:
    def test_node_shorthand_with_inductance_override(self):
        job = job_from_entry({"kind": "optimize", "node": "100nm",
                              "l_nh_per_mm": 1.5})
        assert isinstance(job, OptimizeJob)
        assert job.line.l == pytest.approx(1.5 * NH)
        assert job.driver == NODE_100NM.driver

    def test_explicit_line_and_driver(self):
        job = job_from_entry({
            "kind": "optimize",
            "line": {"r": 1e4, "l": 1e-6, "c": 1e-10},
            "driver": {"r_s": 1e3, "c_p": 1e-15, "c_0": 2e-15}})
        assert job.line.r == 1e4
        assert job.driver.r_s == 1e3

    def test_delay_entry_with_mm_units(self):
        job = job_from_entry({"kind": "delay", "node": "100nm",
                              "l_nh_per_mm": 1.0, "h_mm": 10.0,
                              "k": 150.0})
        assert isinstance(job, DelayJob)
        assert job.h == pytest.approx(0.01)

    def test_sweep_entry(self):
        job = job_from_entry({"kind": "sweep", "node": "100nm",
                              "l_values_nh_per_mm": [0.0, 1.0, 2.0]})
        assert isinstance(job, SweepJob)
        assert job.line_zero_l.l == 0.0
        assert job.l_values == (0.0, 1.0 * NH, 2.0 * NH)

    def test_transient_entry(self):
        job = job_from_entry({"kind": "transient", "node": "100nm",
                              "l_nh_per_mm": 1.8, "segments": 6})
        assert isinstance(job, TransientJob)
        assert job.segments == 6

    def test_experiment_entry(self):
        job = job_from_entry({"kind": "experiment", "id": "fig5",
                              "options": {"points": 11}})
        assert isinstance(job, ExperimentJob)
        assert job.options == {"points": 11}

    def test_method_parsing(self):
        job = job_from_entry({"kind": "optimize", "node": "100nm",
                              "method": "newton"})
        assert job.method is OptimizerMethod.NEWTON

    @pytest.mark.parametrize("entry, match", [
        ({"kind": "bogus"}, "valid 'kind'"),
        ({"kind": "optimize"}, "'node' or explicit"),
        ({"kind": "optimize", "node": "9000nm"}, "unknown technology node"),
        ({"kind": "optimize", "node": "100nm", "method": "magic"},
         "unknown optimizer method"),
        ({"kind": "delay", "node": "100nm"}, "needs 'h'"),
        ({"kind": "sweep", "node": "100nm"}, "needs 'l_values'"),
        ({"kind": "transient"}, "needs a technology 'node'"),
        ({"kind": "experiment"}, "needs 'experiment_id'"),
    ])
    def test_invalid_entries(self, entry, match):
        with pytest.raises(ManifestError, match=match):
            job_from_entry(entry)


class TestJsonManifest:
    def test_bare_list(self, tmp_path):
        path = tmp_path / "m.json"
        path.write_text(json.dumps(
            [{"kind": "optimize", "node": "100nm", "l_nh_per_mm": l}
             for l in (0.0, 1.0)]))
        jobs = load_manifest(path)
        assert len(jobs) == 2
        assert {j.kind for j in jobs} == {"optimize"}

    def test_defaults_block(self, tmp_path):
        path = tmp_path / "m.json"
        path.write_text(json.dumps({
            "defaults": {"kind": "optimize", "node": "100nm", "f": 0.4},
            "jobs": [{"l_nh_per_mm": 1.0}, {"l_nh_per_mm": 2.0, "f": 0.6}],
        }))
        jobs = load_manifest(path)
        assert [j.f for j in jobs] == [0.4, 0.6]

    def test_bad_json_reports_path(self, tmp_path):
        path = tmp_path / "m.json"
        path.write_text("{nope")
        with pytest.raises(ManifestError, match="not valid JSON"):
            load_manifest(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(ManifestError, match="cannot read"):
            load_manifest(tmp_path / "absent.json")

    def test_object_without_jobs_list(self, tmp_path):
        path = tmp_path / "m.json"
        path.write_text(json.dumps({"defaults": {}}))
        with pytest.raises(ManifestError, match="'jobs' list"):
            load_manifest(path)


class TestCsvManifest:
    def test_flat_rows(self, tmp_path):
        path = tmp_path / "m.csv"
        path.write_text("kind,node,l_nh_per_mm,f\n"
                        "optimize,100nm,1.5,0.5\n"
                        "delay,100nm,1.0,0.5\n")
        # The delay row is invalid (no h/k) — errors carry the position.
        with pytest.raises(ManifestError, match="needs 'h'"):
            load_manifest(path)
        path.write_text("kind,node,l_nh_per_mm,h_mm,k\n"
                        "optimize,100nm,1.5,,\n"
                        "delay,100nm,1.0,10.0,150\n")
        jobs = load_manifest(path)
        assert [j.kind for j in jobs] == ["optimize", "delay"]
        assert jobs[1].k == 150.0

    def test_semicolon_lists(self, tmp_path):
        path = tmp_path / "m.csv"
        path.write_text("kind,node,l_values_nh_per_mm\n"
                        "sweep,100nm,0;1;2\n")
        (job,) = load_manifest(path)
        assert job.l_values == (0.0, 1.0 * NH, 2.0 * NH)

    def test_empty_csv(self, tmp_path):
        path = tmp_path / "m.csv"
        path.write_text("kind,node\n")
        with pytest.raises(ManifestError, match="no data rows"):
            load_manifest(path)
