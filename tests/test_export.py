"""Unit tests for the SPICE and CSV exporters."""

import pytest

from repro import NODE_100NM, Stage, rc_optimum, units
from repro.circuits import Circuit, GROUND, Pulse, Sine, Step
from repro.circuits.export import to_spice, write_spice
from repro.experiments.base import ExperimentResult
from repro.experiments.export import result_to_csv, write_csv


def sample_circuit():
    circuit = Circuit("export-sample")
    circuit.voltage_source("VIN", "in", GROUND, Step(level=1.2, delay=1e-10,
                                                     rise=1e-11))
    circuit.resistor("RS", "in", "mid", 123.4)
    circuit.inductor("L1", "mid", "out", 2e-9, initial_current=1e-3)
    circuit.inductor("L2", "out", GROUND, 2e-9)
    circuit.mutual("K1", "L1", "L2", 0.4)
    circuit.capacitor("CL", "out", GROUND, 5e-13, initial_voltage=0.3)
    return circuit


class TestSpiceExport:
    def test_basic_cards(self):
        export = to_spice(sample_circuit())
        text = export.text
        assert text.startswith("* export-sample")
        assert "RS in mid 123.4" in text
        assert "L1 mid out 2e-09 IC=0.001" in text
        assert "K1 L1 L2 0.4" in text
        assert "CL out 0 5e-13 IC=0.3" in text
        assert text.rstrip().endswith(".end")
        assert export.unsupported == []

    def test_step_becomes_pwl(self):
        text = to_spice(sample_circuit()).text
        assert "PWL(0 0 1e-10 0 1.1e-10 1.2)" in text

    def test_pulse_and_sine_sources(self):
        circuit = Circuit()
        circuit.voltage_source("V1", "a", GROUND,
                               Pulse(v1=0, v2=1, delay=1e-9, rise=1e-11,
                                     fall=1e-11, width=4e-10, period=1e-9))
        circuit.current_source("I1", "a", GROUND,
                               Sine(offset=0.0, amplitude=1e-3,
                                    frequency=1e9))
        circuit.resistor("R1", "a", GROUND, 50.0)
        text = to_spice(circuit).text
        assert "PULSE(0 1 1e-09 1e-11 1e-11 4e-10 1e-09)" in text
        assert "SIN(0 0.001 1e+09 0)" in text

    def test_mosfet_model_cards(self):
        from repro.tech import calibrate_inverter
        from repro.circuits import add_mosfet_inverter
        circuit = Circuit()
        circuit.voltage_source("VDD", "vdd", GROUND, 1.2)
        calibration = calibrate_inverter(NODE_100NM)
        add_mosfet_inverter(circuit, "inv", "a", "b", "vdd", calibration)
        circuit.capacitor("CL", "b", GROUND, 1e-14)
        circuit.voltage_source("VIN", "a", GROUND, 0.0)
        text = to_spice(circuit).text
        assert ".model" in text
        assert "nmos" in text and "pmos" in text
        assert "Minv_MN" in text

    def test_dotted_names_sanitized(self):
        circuit = Circuit()
        circuit.resistor("w.R1", "n.1", GROUND, 10.0)
        circuit.resistor("w.R2", "n.1", GROUND, 10.0)
        text = to_spice(circuit).text
        assert "Rw_R1 n_1 0 10" in text

    def test_behavioral_inverter_reported_unsupported(self):
        from repro.circuits import SwitchInverter
        circuit = Circuit()
        circuit.add(SwitchInverter(name="inv", input_node="a",
                                   output_node="b", vdd=1.2, threshold=0.6,
                                   r_out=100.0, width=0.02))
        circuit.capacitor("C1", "a", GROUND, 1e-14)
        circuit.capacitor("C2", "b", GROUND, 1e-14)
        export = to_spice(circuit)
        assert export.unsupported == ["inv"]
        assert "* unsupported behavioral inverter" in export.text

    def test_tran_card(self):
        text = to_spice(sample_circuit(), t_end=1e-9, dt=1e-12).text
        assert ".tran 1e-12 1e-09 UIC" in text

    def test_write_to_file(self, tmp_path):
        path = tmp_path / "deck.sp"
        export = write_spice(sample_circuit(), str(path))
        assert path.read_text() == export.text

    def test_real_stage_exports_cleanly(self):
        from repro.circuits import build_linear_stage
        node = NODE_100NM
        rc = rc_optimum(node.line, node.driver)
        line = node.line_with_inductance(1.0 * units.NH_PER_MM)
        stage = Stage(line=line, driver=node.driver,
                      h=rc.h_opt, k=rc.k_opt)
        bench = build_linear_stage(stage, segments=8)
        export = to_spice(bench.circuit, t_end=1e-9, dt=1e-12)
        assert export.unsupported == []
        # 8 R, 8 L, 8 line C + CP + CL, 1 source.
        assert export.text.count("\nR") == 9   # RS + 8 ladder resistors


class TestCsvExport:
    def make_result(self):
        return ExperimentResult(experiment_id="x", title="T",
                                headers=["a", "b"],
                                rows=[[1.5, "u"], [2.5, "v"]])

    def test_round_trip(self):
        text = result_to_csv(self.make_result())
        lines = text.strip().split("\n")
        assert lines[0] == "a,b"
        assert lines[1] == "1.5,u"
        assert lines[2] == "2.5,v"

    def test_write(self, tmp_path):
        path = tmp_path / "out.csv"
        write_csv(self.make_result(), str(path))
        assert path.read_text().startswith("a,b")
