"""Backend parity suite: serial/thread/process are bitwise identical.

The execution plane's whole contract is that the backend choice is an
operational knob, never a numerical one: everything above the seam
(cache, retry, screening, ordering) is backend-agnostic and nothing
below it touches result payloads.  These tests pin that contract for
successes *and* captured failures, across every job kind the engine
ships, with and without warm cache entries — plus the lifecycle, stats
and crash-recovery behaviour the serve layer leans on.
"""

import asyncio

import pytest

from repro import NODE_100NM, OptimizerMethod, units
from repro.engine import BatchExecutor, ResultCache
from repro.engine.backends import (BACKEND_NAMES, Backend, ProcessBackend,
                                   SerialBackend, ThreadBackend,
                                   make_backend)
from repro.engine.jobs import BatchOptimizeJob, DelayJob, OptimizeJob
from repro.faults import FaultPlan, FaultRule, hooks

NH = units.NH_PER_MM


def delay_jobs(l_values_nh):
    node = NODE_100NM
    return [DelayJob(line=node.line_with_inductance(l * NH),
                     driver=node.driver, h=0.01, k=150.0)
            for l in l_values_nh]


def optimize_jobs(l_values_nh):
    line0 = NODE_100NM.line
    return [OptimizeJob(line=line0.with_inductance(l * NH),
                        driver=NODE_100NM.driver)
            for l in l_values_nh]


def poisoned_job():
    """Deterministically non-convergent: 1-iteration Newton, no re-seed."""
    return OptimizeJob(line=NODE_100NM.line_with_inductance(2.0 * NH),
                      driver=NODE_100NM.driver,
                      method=OptimizerMethod.NEWTON,
                      initial=(1e-4, 5.0), max_iterations=1,
                      retry_reseed=False)


def mixed_jobs():
    """Every engine job kind plus a captured failure, in one batch."""
    return (delay_jobs([0.0, 1.5])
            + optimize_jobs([0.5])
            + [poisoned_job(),
               BatchOptimizeJob.from_inductance_grid(
                   NODE_100NM.line, NODE_100NM.driver,
                   [0.0, 1.0 * NH])])


@pytest.fixture(scope="module")
def serial_baseline():
    """The jobs=1 serial payload every other backend must reproduce."""
    with BatchExecutor(jobs=1, backend="serial") as executor:
        return executor.run(mixed_jobs()).to_payload()


class TestParity:
    @pytest.mark.parametrize("name", BACKEND_NAMES)
    def test_mixed_batch_bitwise_identical(self, name, serial_baseline):
        with BatchExecutor(jobs=2, backend=name) as executor:
            report = executor.run(mixed_jobs())
        assert [o.ok for o in report] == [True, True, True, False, True]
        failure = report.failures[0]
        assert failure.error_type == "OptimizationError"
        assert report.to_payload() == serial_baseline

    @pytest.mark.parametrize("name", ("thread", "process"))
    def test_cache_hit_interleavings(self, name, tmp_path,
                                     serial_baseline):
        """A warm partial cache changes *where* answers come from, not
        what they are: hits and fresh evaluations interleave through the
        pooled backends into the same payload."""
        jobs = mixed_jobs()
        primed = [jobs[1], jobs[4]]  # one delay lane, the batch job
        cache = ResultCache(tmp_path / name)
        with BatchExecutor(jobs=1, cache=cache, backend="serial") as warm:
            warm.run(primed)
        with BatchExecutor(jobs=2, cache=cache, backend=name) as executor:
            report = executor.run(jobs)
        assert report.metrics.cache_hits == len(primed)
        assert [o.from_cache for o in report] \
            == [False, True, False, False, True]
        assert report.to_payload() == serial_baseline

    def test_executor_defaults_follow_jobs(self):
        with BatchExecutor(jobs=1) as solo:
            assert isinstance(solo.backend, SerialBackend)
        with BatchExecutor(jobs=2) as pooled:
            assert isinstance(pooled.backend, ProcessBackend)
            assert pooled.backend.workers == 2


class TestMakeBackend:
    def test_names_resolve_to_classes(self):
        assert isinstance(make_backend("serial"), SerialBackend)
        assert isinstance(make_backend("thread", workers=2), ThreadBackend)
        assert isinstance(make_backend("process", workers=2),
                          ProcessBackend)
        assert isinstance(make_backend(None), SerialBackend)

    def test_instance_passes_through(self):
        backend = SerialBackend()
        assert make_backend(backend) is backend

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            make_backend("fibers")

    @pytest.mark.parametrize("name", ("thread", "process"))
    def test_bad_worker_count_rejected(self, name):
        with pytest.raises(ValueError, match="worker count"):
            make_backend(name, workers=0)


class TestLifecycle:
    def test_context_manager_and_stats(self):
        jobs = delay_jobs([0.0, 1.0, 2.0])
        with ThreadBackend(2, thread_name_prefix="repro-test") as backend:
            envelopes = backend.submit_batch(jobs)
            assert [e["ok"] for e in envelopes] == [True, True, True]
            snapshot = backend.stats.snapshot()
            assert snapshot["dispatches"] == 1
            assert snapshot["lanes"] == 3
            assert snapshot["in_flight"] == 0
            assert snapshot["dispatch_wait_samples"] == 1
        backend.close()  # idempotent

    def test_stats_payload_shape(self):
        backend = SerialBackend()
        backend.submit_batch(delay_jobs([1.0]))
        payload = backend.stats_payload()
        assert payload["backend"] == "serial"
        assert payload["workers"] == 1
        assert payload["queued"] == 0
        assert payload["dispatches"] == 1
        assert {"p50", "p95"} <= set(payload["dispatch_wait"])

    def test_start_is_idempotent(self):
        backend = ThreadBackend(1)
        try:
            backend.start()
            pool = backend._pool
            backend.start()
            assert backend._pool is pool
        finally:
            backend.close()


class TestServeSeam:
    """run_call / run_call_async: one evaluator call on one worker."""

    @pytest.mark.parametrize("name", BACKEND_NAMES)
    def test_run_call_matches_direct_evaluation(self, name):
        from repro.serve.service import evaluate_delay_batch

        jobs = delay_jobs([0.0, 0.5, 1.0])
        direct = evaluate_delay_batch(jobs)
        with make_backend(name, workers=2) as backend:
            via_sync = backend.run_call(evaluate_delay_batch, jobs)
            via_async = asyncio.run(
                backend.run_call_async(evaluate_delay_batch, jobs))
        assert via_sync == direct
        assert via_async == direct

    def test_run_call_counts_dispatches(self):
        from repro.serve.service import evaluate_delay_batch

        jobs = delay_jobs([0.0, 1.0])
        with ThreadBackend(1) as backend:
            backend.run_call(evaluate_delay_batch, jobs)
            asyncio.run(
                backend.run_call_async(evaluate_delay_batch, jobs))
            snapshot = backend.stats.snapshot()
        assert snapshot["dispatches"] == 2
        assert snapshot["lanes"] == 4
        assert snapshot["in_flight"] == 0
        assert snapshot["dispatch_wait_samples"] == 2


class TestCrashRecovery:
    def test_process_pool_restarts_after_worker_death(self):
        """A worker dying mid-batch fails that batch loud — with the
        actionable re-run context — and the pool rebuild makes the very
        next dispatch on the same executor succeed."""
        plan = FaultPlan(seed=11, rules=[
            FaultRule(site="backend.worker.crash", mode="first", n=1)])
        jobs = optimize_jobs([0.0, 0.5])
        with BatchExecutor(jobs=2, backend="process") as executor:
            with hooks.active(plan):
                with pytest.raises(RuntimeError) as excinfo:
                    executor.run(jobs)
                message = str(excinfo.value)
                assert "2 jobs" in message
                assert "2 workers" in message
                assert "re-run with jobs=1" in message
                report = executor.run(jobs)
            assert report.all_ok
            assert executor.backend.stats.snapshot()["worker_restarts"] \
                == 1
            # The restart happened inside the *failed* run, so the
            # successful run's own delta is clean.
            assert report.metrics.worker_restarts == 0
            assert report.metrics.dispatches == 1

    def test_serial_crash_keeps_context(self):
        plan = FaultPlan(seed=3, rules=[
            FaultRule(site="backend.worker.crash", mode="first", n=1)])
        backend = SerialBackend()
        with hooks.active(plan):
            with pytest.raises(RuntimeError,
                               match="re-run with jobs=1"):
                backend.submit_batch(delay_jobs([0.0, 1.0, 2.0]))
        assert backend.stats.snapshot()["in_flight"] == 0


class TestSharedBackendAcrossLayers:
    def test_service_and_executor_share_one_instance(self):
        """One backend instance threads through both seams; neither
        layer closes what it did not create."""
        from repro.serve.protocol import ServeRequest
        from repro.serve.service import ReproService

        jobs = delay_jobs([0.0, 1.0, 2.0, 3.0])
        with ThreadBackend(2, thread_name_prefix="repro-shared") \
                as backend:
            with BatchExecutor(jobs=2, backend=backend) as executor:
                engine_report = executor.run(jobs)

            async def run_service():
                service = ReproService(cache=None, backend=backend,
                                       max_linger=0.0)
                try:
                    return await asyncio.gather(
                        *(service.submit(ServeRequest(job=job))
                          for job in jobs))
                finally:
                    await service.close()

            responses = asyncio.run(run_service())
            assert backend._pool is not None  # neither layer closed it
        assert engine_report.all_ok
        assert all(r["ok"] for r in responses)
        for outcome, response in zip(engine_report, responses):
            assert response["result"] == outcome.result
