"""Unit tests for the coupled bus bench and its Miller-effect physics."""

import pytest

from repro import NODE_100NM, rc_optimum, units
from repro.analysis import Waveform
from repro.circuits import (Circuit, build_bus_bench, initial_bus_voltages,
                            simulate)
from repro.errors import ParameterError
from repro.extraction import sakurai_coupling, wire_from_tech


@pytest.fixture(scope="module")
def bus_config():
    node = NODE_100NM
    rc = rc_optimum(node.line, node.driver)
    wire = wire_from_tech(node.geometry)
    drv = node.driver.sized(rc.k_opt)
    return {
        "node": node,
        "length": rc.h_opt,
        "r_driver": drv.r_series,
        "c_load": drv.c_load,
        "coupling_c": sakurai_coupling(wire, node.epsilon_r),
    }


def victim_delay(config, patterns, km, l_nh=1.0, segments=8):
    node = config["node"]
    line = node.line_with_inductance(l_nh * units.NH_PER_MM)
    bench = build_bus_bench(
        line, n_lines=len(patterns), length=config["length"],
        segments=segments, r_driver=config["r_driver"],
        c_load=config["c_load"],
        coupling_capacitance_per_length=config["coupling_c"],
        patterns=patterns, vdd=node.vdd, inductive_coupling=km)
    result = simulate(bench.circuit, 2e-9, 2.5e-12,
                      initial_voltages=initial_bus_voltages(bench))
    victim_index = len(patterns) // 2
    waveform = Waveform(result.time,
                        result.voltage(bench.far_node(victim_index)))
    return waveform.first_crossing(0.5 * node.vdd)


class TestConstruction:
    def test_element_counts(self, bus_config):
        node = bus_config["node"]
        line = node.line_with_inductance(1.0 * units.NH_PER_MM)
        bench = build_bus_bench(
            line, n_lines=3, length=bus_config["length"], segments=5,
            r_driver=100.0, c_load=1e-15,
            coupling_capacitance_per_length=bus_config["coupling_c"],
            patterns=("low", "up", "low"), vdd=node.vdd,
            inductive_coupling=0.3)
        assert bench.n_lines == 3
        # 2 adjacent pairs x 5 segments of coupling caps.
        coupling_caps = [e for e in bench.circuit.elements
                         if e.name.startswith("CC")]
        assert len(coupling_caps) == 10
        # Mutuals: adjacent pairs (k=0.3) and the 0-2 pair (k=0.15).
        mutuals = [e for e in bench.circuit.elements
                   if e.name.startswith("K")]
        assert len(mutuals) == 15

    def test_validation(self, bus_config):
        node = bus_config["node"]
        line = node.line_with_inductance(1.0 * units.NH_PER_MM)
        with pytest.raises(ParameterError):
            build_bus_bench(line, n_lines=1, length=0.01, segments=4,
                            r_driver=100.0, c_load=1e-15,
                            coupling_capacitance_per_length=1e-12,
                            patterns=("up",))
        with pytest.raises(ParameterError):
            build_bus_bench(line, n_lines=2, length=0.01, segments=4,
                            r_driver=100.0, c_load=1e-15,
                            coupling_capacitance_per_length=1e-12,
                            patterns=("up", "sideways"))
        with pytest.raises(ParameterError):
            build_bus_bench(line, n_lines=2, length=0.01, segments=4,
                            r_driver=100.0, c_load=1e-15,
                            coupling_capacitance_per_length=1e-12,
                            patterns=("up",))

    def test_initial_voltages_match_patterns(self, bus_config):
        node = bus_config["node"]
        line = node.line_with_inductance(1.0 * units.NH_PER_MM)
        bench = build_bus_bench(
            line, n_lines=3, length=0.005, segments=3, r_driver=100.0,
            c_load=1e-15, coupling_capacitance_per_length=1e-12,
            patterns=("down", "up", "high"), vdd=node.vdd)
        ics = initial_bus_voltages(bench)
        assert ics[bench.near_node(0)] == node.vdd      # 'down' starts high
        assert ics[bench.near_node(1)] == 0.0           # 'up' starts low
        assert ics[bench.far_node(2)] == node.vdd       # 'high' held high


class TestMillerPhysics:
    def test_capacitive_miller_ordering(self, bus_config):
        """k = 0: in-phase < quiet < anti-phase (classic Miller)."""
        quiet = victim_delay(bus_config, ("low", "up", "low"), 0.0)
        in_phase = victim_delay(bus_config, ("up", "up", "up"), 0.0)
        anti = victim_delay(bus_config, ("down", "up", "down"), 0.0)
        assert in_phase < quiet < anti

    def test_inductive_miller_inverts_ordering(self, bus_config):
        """Strong mutual coupling: in-phase > quiet > anti-phase."""
        km = 0.5
        quiet = victim_delay(bus_config, ("low", "up", "low"), km)
        in_phase = victim_delay(bus_config, ("up", "up", "up"), km)
        anti = victim_delay(bus_config, ("down", "up", "down"), km)
        assert in_phase > quiet > anti

    def test_inversion_grows_with_coupling(self, bus_config):
        """The in-phase/anti-phase split widens with mutual k."""
        def split(km):
            in_phase = victim_delay(bus_config, ("up", "up", "up"), km)
            anti = victim_delay(bus_config, ("down", "up", "down"), km)
            return in_phase - anti

        assert split(0.5) > split(0.3) > 0.0
        assert split(0.0) < 0.0


class TestBusExperiment:
    def test_ext_bus_reports_both_regimes(self):
        from repro.experiments import run_experiment
        result = run_experiment("ext_bus", segments=8,
                                inductive_couplings=(0.0, 0.5))
        by_km = {row[0]: row for row in result.rows}
        # Columns: km, quiet, in-phase, anti-phase.
        assert by_km[0.0][2] < by_km[0.0][3]    # capacitive: in < anti
        assert by_km[0.5][2] > by_km[0.5][3]    # inductive: in > anti
