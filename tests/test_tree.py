"""Unit tests for the RC-tree moment engine."""

import math

import pytest

from repro.core.tree import ROOT, RCTree
from repro.errors import ParameterError


def lumped_rc(r=1000.0, c=1e-12):
    tree = RCTree()
    tree.add("out", ROOT, r, c)
    return tree


class TestConstruction:
    def test_duplicate_node_rejected(self):
        tree = lumped_rc()
        with pytest.raises(ParameterError):
            tree.add("out", ROOT, 1.0, 1e-15)

    def test_unknown_parent_rejected(self):
        with pytest.raises(ParameterError):
            RCTree().add("a", "nope", 1.0, 1e-15)

    def test_invalid_values_rejected(self):
        tree = RCTree()
        with pytest.raises(ParameterError):
            tree.add("a", ROOT, 0.0, 1e-15)
        with pytest.raises(ParameterError):
            tree.add("a", ROOT, 1.0, -1e-15)
        with pytest.raises(ParameterError):
            RCTree(root_capacitance=-1.0)

    def test_add_chain(self):
        tree = RCTree()
        leaf = tree.add_chain(ROOT, "w", 4, 100.0, 4e-13)
        assert leaf == "w.4"
        assert len(tree.nodes) == 5
        assert tree.total_capacitance() == pytest.approx(4e-13)


class TestElmore:
    def test_lumped_rc(self):
        tree = lumped_rc(1000.0, 1e-12)
        assert tree.elmore_delay("out") == pytest.approx(1e-9)

    def test_two_segment_chain_hand_computed(self):
        """R1=1k C1=1p, R2=2k C2=3p:
        m1(n1) = R1 (C1 + C2) = 4n;  m1(n2) = m1(n1) + R2 C2 = 10n."""
        tree = RCTree()
        tree.add("n1", ROOT, 1000.0, 1e-12)
        tree.add("n2", "n1", 2000.0, 3e-12)
        assert tree.elmore_delay("n1") == pytest.approx(4e-9)
        assert tree.elmore_delay("n2") == pytest.approx(10e-9)

    def test_branching_shares_upstream_resistance(self):
        """Two equal branches off one stem: both leaves see the stem's
        delay plus their own, and the stem carries the total C."""
        tree = RCTree()
        tree.add("stem", ROOT, 1000.0, 1e-12)
        tree.add("left", "stem", 500.0, 2e-12)
        tree.add("right", "stem", 500.0, 2e-12)
        # m1(stem) = 1000 * 5p = 5n; leaves add 500 * 2p = 1n.
        assert tree.elmore_delay("stem") == pytest.approx(5e-9)
        assert tree.elmore_delay("left") == pytest.approx(6e-9)
        assert tree.elmore_delay("right") == pytest.approx(6e-9)

    def test_root_has_zero_delay(self):
        tree = lumped_rc()
        assert tree.elmore_delay(ROOT) == 0.0

    def test_unknown_node(self):
        with pytest.raises(ParameterError):
            lumped_rc().elmore_delay("missing")


class TestSecondMoments:
    def test_lumped_rc_moments(self):
        """Single RC: m1 = RC, m2 = (RC)^2, so b2 = 0 (exactly one pole)."""
        tree = lumped_rc(1000.0, 1e-12)
        rc = 1e-9
        assert tree.second_moment("out") == pytest.approx(rc * rc)
        b1, b2 = tree.pade_moments("out")
        assert b1 == pytest.approx(rc)
        assert b2 == pytest.approx(0.0, abs=1e-24)

    def test_two_segment_hand_computed(self):
        """m2(n2) = R1 (C1 m1(n1) + C2 m1(n2)) + R2 C2 m1(n2)."""
        tree = RCTree()
        tree.add("n1", ROOT, 1000.0, 1e-12)
        tree.add("n2", "n1", 2000.0, 3e-12)
        m1_n1, m1_n2 = 4e-9, 10e-9
        expected = (1000.0 * (1e-12 * m1_n1 + 3e-12 * m1_n2)
                    + 2000.0 * 3e-12 * m1_n2)
        assert tree.second_moment("n2") == pytest.approx(expected)

    def test_distributed_chain_matches_analytic_limit(self):
        """Many segments -> distributed line moments: b1 = RC/2 + ...,
        here a bare wire: b1 -> RC/2, b2 -> (RC)^2 (1/4 - 1/24...)."""
        total_r, total_c = 100.0, 2e-12
        tree = RCTree()
        leaf = tree.add_chain(ROOT, "w", 200, total_r, total_c)
        b1, b2 = tree.pade_moments(leaf)
        rc = total_r * total_c
        # Distributed-line Pade moments: b1 = rc/2, b2 = rc^2 (1/4 - 1/24)
        # ... from b1^2 - m2 with m2 = rc^2 / 24 * ... use known values:
        # for an open-ended distributed RC line b1 = rc/2 and
        # b2 = rc^2 * 5/24? Validate against repro.core.moments instead.
        from repro.core.moments import moments_from_lumped
        b1_ref, b2_ref = moments_from_lumped(
            r_series=1e-9, c_parasitic=0.0, c_load=0.0,
            r=total_r, l=0.0, c=total_c, h=1.0)
        assert b1 == pytest.approx(b1_ref, rel=0.01)
        assert b2 == pytest.approx(b2_ref, rel=0.02)


class TestTreeDelay:
    def test_lumped_rc_is_ln2(self):
        tree = lumped_rc(1000.0, 1e-12)
        assert tree.delay("out") == pytest.approx(math.log(2.0) * 1e-9,
                                                  rel=1e-9)

    def test_matches_chain_stage_model(self, node, rc_opt):
        """A tree built as driver + uniform chain + load reproduces the
        stage two-pole delay (the chain special case)."""
        from repro import Stage, threshold_delay
        stage = Stage(line=node.line, driver=node.driver,
                      h=rc_opt.h_opt, k=rc_opt.k_opt)
        drv = stage.sized_driver
        tree = RCTree(root_capacitance=0.0)
        # Driver resistance as a first segment carrying C_P.
        tree.add("drv", ROOT, drv.r_series, drv.c_parasitic)
        leaf = tree.add_chain("drv", "w", 400, stage.total_line_resistance,
                              stage.total_line_capacitance)
        tree.add("sink", leaf, 1e-9, drv.c_load)
        tau_tree = tree.delay("sink")
        tau_stage = threshold_delay(stage).tau
        assert tau_tree == pytest.approx(tau_stage, rel=0.01)

    def test_delay_monotone_along_chain(self):
        tree = RCTree()
        tree.add_chain(ROOT, "w", 10, 1000.0, 1e-12)
        delays = [tree.delay(f"w.{i}") for i in range(1, 11)]
        assert delays == sorted(delays)

    def test_balanced_tree_leaves_equal(self):
        tree = RCTree()
        tree.add("stem", ROOT, 100.0, 1e-13)
        for side in ("a", "b"):
            tree.add_chain("stem", side, 5, 500.0, 5e-13)
        assert tree.delay("a.5") == pytest.approx(tree.delay("b.5"))

    def test_sibling_load_slows_a_leaf(self):
        """Adding capacitance on a sibling branch raises a leaf's delay
        (shared upstream resistance) — the tree effect a chain misses."""
        def leaf_delay(sibling_c):
            tree = RCTree()
            tree.add("stem", ROOT, 1000.0, 1e-13)
            tree.add("leaf", "stem", 500.0, 1e-12)
            if sibling_c:
                tree.add("sibling", "stem", 500.0, sibling_c)
            return tree.delay("leaf")

        assert leaf_delay(5e-12) > leaf_delay(0.0)
