"""Transient solver tests against closed-form circuit responses."""

import math

import numpy as np
import pytest

from repro.circuits import (Circuit, GROUND, Step, TransientOptions,
                            TransientSolver, simulate)
from repro.errors import SimulationError


def rc_charge_circuit(r=1000.0, c=1e-12, v=1.0):
    circuit = Circuit("rc")
    circuit.voltage_source("V1", "in", GROUND, Step(level=v))
    circuit.resistor("R1", "in", "out", r)
    circuit.capacitor("C1", "out", GROUND, c)
    return circuit


class TestLinearAccuracy:
    def test_rc_charging_matches_exponential(self):
        r, c = 1000.0, 1e-12
        tau = r * c
        result = simulate(rc_charge_circuit(r, c), 5.0 * tau, tau / 200.0)
        expected = 1.0 - np.exp(-result.time / tau)
        assert result.voltage("out") == pytest.approx(expected, abs=2e-3)

    def test_rl_current_rise(self):
        """Series R-L driven by a step: i = (V/R)(1 - exp(-tR/L))."""
        r, l, v = 100.0, 1e-9, 1.0
        tau = l / r
        circuit = Circuit("rl")
        circuit.voltage_source("V1", "in", GROUND, Step(level=v))
        circuit.resistor("R1", "in", "mid", r)
        circuit.inductor("L1", "mid", GROUND, l)
        result = simulate(circuit, 5.0 * tau, tau / 200.0)
        expected = (v / r) * (1.0 - np.exp(-result.time / tau))
        assert result.branch_current("L1") == pytest.approx(expected,
                                                            abs=2e-3 * v / r)

    def test_lc_oscillation_frequency_and_energy(self):
        """Undriven LC tank rings at 1/(2 pi sqrt(LC)) without decay."""
        l, c, v0 = 1e-9, 1e-12, 1.0
        circuit = Circuit("lc")
        circuit.inductor("L1", "a", GROUND, l)
        circuit.capacitor("C1", "a", GROUND, c, initial_voltage=v0)
        period = 2.0 * math.pi * math.sqrt(l * c)
        result = simulate(circuit, 10.0 * period, period / 400.0,
                          initial_voltages={"a": v0})
        voltage = result.voltage("a")
        from repro.analysis import Waveform
        waveform = Waveform(result.time, voltage)
        measured = waveform.oscillation_period(0.0, skip=1)
        assert measured == pytest.approx(period, rel=1e-3)
        # Trapezoidal integration conserves LC energy (no artificial decay):
        late_peak = np.max(np.abs(voltage[-int(len(voltage) / 5):]))
        assert late_peak == pytest.approx(v0, rel=2e-2)

    def test_rlc_series_underdamped_ringing(self):
        """Series RLC: damped frequency sqrt(1/LC - (R/2L)^2)."""
        r, l, c = 10.0, 1e-9, 1e-12
        circuit = Circuit("rlc")
        circuit.voltage_source("V1", "in", GROUND, Step(level=1.0))
        circuit.resistor("R1", "in", "a", r)
        circuit.inductor("L1", "a", "b", l)
        circuit.capacitor("C1", "b", GROUND, c)
        alpha = r / (2.0 * l)
        wd = math.sqrt(1.0 / (l * c) - alpha * alpha)
        period = 2.0 * math.pi / wd
        result = simulate(circuit, 8.0 * period, period / 400.0)
        from repro.analysis import Waveform
        waveform = Waveform(result.time, result.voltage("b"))
        assert waveform.oscillation_period(1.0, skip=1) == pytest.approx(
            period, rel=5e-3)
        overshoot = waveform.overshoot(1.0)
        expected = math.exp(-alpha * math.pi / wd)
        assert overshoot == pytest.approx(expected, rel=0.05)

    def test_backward_euler_damps_lc(self):
        """BE is dissipative: the LC amplitude must visibly decay."""
        l, c, v0 = 1e-9, 1e-12, 1.0
        circuit = Circuit("lc-be")
        circuit.inductor("L1", "a", GROUND, l)
        circuit.capacitor("C1", "a", GROUND, c, initial_voltage=v0)
        period = 2.0 * math.pi * math.sqrt(l * c)
        result = simulate(circuit, 10.0 * period, period / 100.0,
                          initial_voltages={"a": v0},
                          options=TransientOptions(method="backward_euler"))
        voltage = result.voltage("a")
        late_peak = np.max(np.abs(voltage[-int(len(voltage) / 5):]))
        assert late_peak < 0.5 * v0

    def test_voltage_source_branch_current(self):
        """Source current equals -(load current) through a resistor."""
        circuit = Circuit("divider")
        circuit.voltage_source("V1", "in", GROUND, 2.0)
        circuit.resistor("R1", "in", GROUND, 100.0)
        result = simulate(circuit, 1e-9, 1e-11)
        # 20 mA flows from the source's + node through R1 to ground; the
        # branch current (a -> b through the source) is therefore -20 mA.
        assert result.branch_current("V1")[-1] == pytest.approx(-0.02,
                                                                rel=1e-6)

    def test_resistor_current_helper(self):
        circuit = Circuit("divider")
        circuit.voltage_source("V1", "in", GROUND, 2.0)
        circuit.resistor("R1", "in", GROUND, 100.0)
        result = simulate(circuit, 1e-9, 1e-11)
        assert result.resistor_current("R1")[-1] == pytest.approx(0.02,
                                                                  rel=1e-6)
        with pytest.raises(SimulationError):
            result.resistor_current("V1")

    def test_initial_conditions_respected(self):
        circuit = Circuit("ic")
        circuit.resistor("R1", "a", GROUND, 1000.0)
        circuit.capacitor("C1", "a", GROUND, 1e-12)
        result = simulate(circuit, 5e-9, 1e-11, initial_voltages={"a": 1.0})
        v = result.voltage("a")
        assert v[0] == pytest.approx(1.0)
        tau = 1000.0 * 1e-12
        expected = np.exp(-result.time / tau)
        assert v == pytest.approx(expected, abs=5e-3)


class TestSolverBehaviour:
    def test_rejects_nonpositive_times(self):
        with pytest.raises(SimulationError):
            simulate(rc_charge_circuit(), 0.0, 1e-12)
        with pytest.raises(SimulationError):
            simulate(rc_charge_circuit(), 1e-9, -1e-12)

    def test_validates_netlist_on_construction(self):
        circuit = Circuit("bad")
        circuit.resistor("R1", "a", "b", 100.0)
        circuit.resistor("R2", "a", GROUND, 100.0)
        with pytest.raises(Exception):
            TransientSolver(circuit)

    def test_final_voltages_helper(self):
        result = simulate(rc_charge_circuit(), 20e-9, 1e-11)
        finals = result.final_voltages()
        assert finals["out"] == pytest.approx(1.0, abs=1e-3)
        assert finals[GROUND] == 0.0

    def test_result_time_grid(self):
        result = simulate(rc_charge_circuit(), 1e-9, 1e-10)
        assert result.time[0] == 0.0
        assert result.time[-1] == pytest.approx(1e-9)
        assert np.all(np.diff(result.time) > 0.0)

    def test_node_names_listed(self):
        result = simulate(rc_charge_circuit(), 1e-10, 1e-11)
        assert set(result.node_names) == {"in", "out"}

    def test_unknown_integration_method_rejected(self):
        with pytest.raises(ValueError):
            TransientOptions(method="magic")
