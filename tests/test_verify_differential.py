"""Differential-checker tests, including the perturbation acceptance test.

The last class deliberately breaks the core two-pole formula (a sign flip
of the inductance term in b2, the exact bug class the paper's model is
most sensitive to) and asserts the differential sweep catches it — the
subsystem's reason to exist.
"""

from unittest import mock

import pytest

import repro.core.moments as moments_mod
import repro.verify.oracles as oracles_mod
from repro.core.moments import Moments
from repro.engine import BatchExecutor
from repro.verify import (DiscrepancyReport, PairCheck, SkippedCheck,
                          ToleranceLedger, ToleranceRule, VerifyCase,
                          case_for_regime, default_case_matrix,
                          evaluate_matrix, run_differential)

#: Cheap oracle subset used throughout (serial executor keeps
#: monkeypatches visible to job evaluation).
CHEAP = ("two_pole", "elmore", "kahng_muddu", "talbot")


@pytest.fixture
def small_matrix():
    return tuple(case_for_regime("250nm", regime, f)
                 for regime in ("overdamped", "underdamped")
                 for f in (0.2, 0.5))


class TestCaseMatrix:
    def test_default_matrix_shape(self):
        cases = default_case_matrix()
        # 2 nodes x 2 sizings x 3 regimes x 3 thresholds
        assert len(cases) == 36
        assert len({case.case_id for case in cases}) == 36

    def test_regimes_realized_by_construction(self):
        for regime, expected in (("overdamped", "overdamped"),
                                 ("critical", "critically_damped"),
                                 ("underdamped", "underdamped")):
            case = case_for_regime("100nm", regime, 0.5)
            assert case.damping() == expected, regime

    def test_case_round_trip(self, small_matrix):
        for case in small_matrix:
            assert VerifyCase.from_dict(case.canonical()) == case

    def test_invalid_threshold_rejected(self, generic_line, generic_driver):
        from repro.errors import ParameterError
        with pytest.raises(ParameterError, match=r"\(0, 1\)"):
            VerifyCase(case_id="bad", line=generic_line,
                       driver=generic_driver, h=1e-3, k=10.0, f=1.0)


class TestEvaluateMatrix:
    def test_observations_keyed_by_index_and_oracle(self, small_matrix):
        observations, skipped = evaluate_matrix(small_matrix,
                                                ["two_pole", "elmore"])
        assert set(observations) == {(i, name)
                                     for i in range(len(small_matrix))
                                     for name in ("two_pole", "elmore")}
        assert skipped == []

    def test_unsupported_oracle_recorded_as_skip(self, small_matrix):
        observations, skipped = evaluate_matrix(small_matrix,
                                                ["ismail_friedman"])
        # f = 0.5 cases evaluate; f = 0.2 cases are domain skips.
        assert len(observations) == 2
        assert len(skipped) == 2
        assert all("does not support" in s.reason for s in skipped)

    def test_evaluation_failure_isolated_as_skip(self, small_matrix):
        def boom(case):
            raise RuntimeError("injected oracle failure")

        with mock.patch.object(oracles_mod.ORACLES["two_pole"], "evaluate",
                               side_effect=boom):
            observations, skipped = evaluate_matrix(
                small_matrix[:1], ["two_pole", "elmore"])
        assert (0, "elmore") in observations
        assert (0, "two_pole") not in observations
        assert len(skipped) == 1
        assert "injected oracle failure" in skipped[0].reason


class TestRunDifferential:
    def test_clean_sweep_passes(self, small_matrix):
        report = run_differential(small_matrix, oracles=CHEAP)
        assert report.passed
        assert report.n_cases == len(small_matrix)
        assert report.checks
        assert all(isinstance(c, PairCheck) for c in report.checks)

    def test_missing_ledger_rule_recorded_not_silent(self, small_matrix):
        # elmore vs two_pole has deliberately no underdamped rule.
        report = run_differential(small_matrix,
                                  oracles=("two_pole", "elmore"))
        reasons = [s.reason for s in report.skipped]
        assert any("no ledger rule for regime=underdamped" in r
                   for r in reasons)

    def test_violation_carries_justification(self, small_matrix):
        strict = ToleranceLedger([
            ToleranceRule("elmore", "two_pole", "*", 1e-12,
                          justification="impossible bound for testing")])
        report = run_differential(small_matrix,
                                  oracles=("two_pole", "elmore"),
                                  ledger=strict)
        assert not report.passed
        assert all(v.justification == "impossible bound for testing"
                   for v in report.violations)

    def test_payload_schema(self, small_matrix):
        report = run_differential(small_matrix, oracles=CHEAP)
        payload = report.to_payload()
        assert payload["schema"] == "repro-verify-report/1"
        assert payload["passed"] is True
        assert payload["n_checks"] == len(report.checks)
        assert len(payload["checks"]) == len(report.checks)

    def test_parallel_executor_matches_serial(self, small_matrix):
        serial = run_differential(small_matrix, oracles=CHEAP)
        parallel = run_differential(small_matrix, oracles=CHEAP,
                                    executor=BatchExecutor(jobs=2))
        assert serial.to_payload() == parallel.to_payload()

    def test_format_table_lists_checks(self, small_matrix):
        report = run_differential(small_matrix,
                                  oracles=("two_pole", "elmore"))
        table = report.format_table()
        assert "two_pole" in table or "elmore" in table
        assert report.format_table(only_violations=True) == "(no violations)"


def _b2_sign_flipped(real_terms):
    """moments_terms with the b2 inductance term's sign inverted.

    Patching the shared elementwise helper perturbs the scalar
    ``compute_moments`` *and* the batched ``compute_moments_v`` (the
    kernels resolve it through the moments module at call time), so the
    injected bug reaches every oracle routed through either path.
    """
    def perturbed(r, l, c, r_s, c_p, c_0, h, k):
        b1, b2, db1_dh, db1_dk, db2_dh, db2_dk = real_terms(
            r, l, c, r_s, c_p, c_0, h, k)
        inductance_term = 0.5 * l * c * h * h
        return (b1, b2 - 2.0 * inductance_term,
                db1_dh, db1_dk, db2_dh, db2_dk)
    return perturbed


class TestPerturbationDetection:
    """A deliberately broken core formula must not survive the sweep."""

    def test_b2_sign_flip_caught_by_differential(self):
        perturbed = _b2_sign_flipped(moments_mod.moments_terms)
        with mock.patch.object(moments_mod, "moments_terms", perturbed):
            report = run_differential(default_case_matrix(), oracles=CHEAP)
        assert not report.passed
        # The independent exact-inversion oracle is the witness: talbot
        # inverts Eq. 1 directly and never touches the Pade moments.
        assert any(v.reference == "talbot" for v in report.violations)

    def test_unperturbed_sweep_is_clean(self):
        report = run_differential(default_case_matrix(), oracles=CHEAP)
        assert report.passed, report.format_table(only_violations=True)
