"""Unit tests for the Elmore delay and the closed-form RC optimum."""

import pytest

from repro import (NODE_100NM, NODE_250NM, ParameterError, Stage,
                   driver_from_rc_optimum, elmore_stage_delay,
                   elmore_total_delay, rc_optimum, units)


class TestTable1Reproduction:
    """The closed forms must reproduce Table 1's derived columns exactly."""

    @pytest.mark.parametrize("node,h_mm,k,tau_ps", [
        (NODE_250NM, 14.4, 578, 305.17),
        (NODE_100NM, 11.1, 528, 105.94),
    ], ids=["250nm", "100nm"])
    def test_rc_optimum_matches_paper(self, node, h_mm, k, tau_ps):
        optimum = rc_optimum(node.line, node.driver)
        assert units.to_mm(optimum.h_opt) == pytest.approx(h_mm, abs=0.05)
        assert optimum.k_opt == pytest.approx(k, abs=0.5)
        assert units.to_ps(optimum.tau_opt) == pytest.approx(tau_ps, abs=0.05)

    def test_tau_opt_independent_of_wiring_level(self, node):
        """tau_optRC depends only on the driver, not on (r, c)."""
        other_line = node.line.with_capacitance(2.0 * node.line.c)
        a = rc_optimum(node.line, node.driver)
        b = rc_optimum(other_line, node.driver)
        assert a.tau_opt == pytest.approx(b.tau_opt, rel=1e-14)
        assert a.h_opt != pytest.approx(b.h_opt)

    def test_delay_per_length(self, node):
        optimum = rc_optimum(node.line, node.driver)
        assert optimum.delay_per_length == pytest.approx(
            optimum.tau_opt / optimum.h_opt)


class TestElmoreDelay:
    def test_stage_delay_at_optimum_equals_tau_opt(self, node, rc_opt):
        stage = Stage(line=node.line, driver=node.driver,
                      h=rc_opt.h_opt, k=rc_opt.k_opt)
        assert elmore_stage_delay(stage) == pytest.approx(rc_opt.tau_opt,
                                                          rel=1e-12)

    def test_optimum_is_a_minimum(self, node, rc_opt):
        """Perturbing h or k in either direction increases tau/h."""
        def delay_per_length(h, k):
            stage = Stage(line=node.line, driver=node.driver, h=h, k=k)
            return elmore_stage_delay(stage) / h

        best = delay_per_length(rc_opt.h_opt, rc_opt.k_opt)
        for factor in (0.9, 1.1):
            assert delay_per_length(rc_opt.h_opt * factor,
                                    rc_opt.k_opt) > best
            assert delay_per_length(rc_opt.h_opt,
                                    rc_opt.k_opt * factor) > best

    def test_total_delay_scales_with_length(self, node, rc_opt):
        single = elmore_total_delay(node.line, node.driver, 0.01,
                                    rc_opt.h_opt, rc_opt.k_opt)
        double = elmore_total_delay(node.line, node.driver, 0.02,
                                    rc_opt.h_opt, rc_opt.k_opt)
        assert double == pytest.approx(2.0 * single)

    def test_total_delay_rejects_bad_length(self, node, rc_opt):
        with pytest.raises(ParameterError):
            elmore_total_delay(node.line, node.driver, 0.0,
                               rc_opt.h_opt, rc_opt.k_opt)


class TestDriverInversion:
    """driver_from_rc_optimum inverts the closed forms (the paper's Table 1
    derivation path)."""

    def test_round_trip(self, node):
        optimum = rc_optimum(node.line, node.driver)
        recovered = driver_from_rc_optimum(node.line, optimum.h_opt,
                                           optimum.k_opt, optimum.tau_opt)
        assert recovered.r_s == pytest.approx(node.driver.r_s, rel=1e-9)
        assert recovered.c_p == pytest.approx(node.driver.c_p, rel=1e-9)
        assert recovered.c_0 == pytest.approx(node.driver.c_0, rel=1e-9)

    def test_rejects_inconsistent_tau(self, node):
        optimum = rc_optimum(node.line, node.driver)
        with pytest.raises(ParameterError):
            driver_from_rc_optimum(node.line, optimum.h_opt, optimum.k_opt,
                                   0.1 * optimum.tau_opt)

    def test_rejects_tau_implying_negative_parasitic(self, node):
        optimum = rc_optimum(node.line, node.driver)
        # tau too large implies c_0/(c_0+c_p) > 1.
        with pytest.raises(ParameterError):
            driver_from_rc_optimum(node.line, optimum.h_opt, optimum.k_opt,
                                   10.0 * optimum.tau_opt)
