"""Property-based tests of the circuit simulator on random networks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import Circuit, GROUND, Step, simulate
from repro.circuits.mna import dc_operating_point

# Component-value strategies in sane on-chip ranges.
resistances = st.floats(min_value=1.0, max_value=1e5)
capacitances = st.floats(min_value=1e-15, max_value=1e-11)
inductances = st.floats(min_value=1e-12, max_value=1e-8)


def random_rc_ladder(r_values, c_values):
    circuit = Circuit("random-rc-ladder")
    circuit.voltage_source("V1", "in", GROUND, Step(level=1.0))
    previous = "in"
    for i, (r, c) in enumerate(zip(r_values, c_values)):
        node = f"n{i}"
        circuit.resistor(f"R{i}", previous, node, r)
        circuit.capacitor(f"C{i}", node, GROUND, c)
        previous = node
    return circuit, previous


class TestRandomRcLadders:
    @given(r_values=st.lists(resistances, min_size=1, max_size=6),
           c_values=st.lists(capacitances, min_size=6, max_size=6))
    # derandomize: the 5 % overshoot allowance below is a tolerance on
    # trapezoidal ringing, and a fresh random seed occasionally draws a
    # ladder stiff enough to graze it — a flake, not a regression.  A
    # fixed example set keeps the passivity check reproducible; CI's
    # stateful-fault job explores randomized inputs where tolerances
    # are not load-bearing.
    @settings(max_examples=30, deadline=None, derandomize=True)
    def test_step_response_monotone_and_bounded(self, r_values, c_values):
        """Driven RC ladders are passive: 0 <= v <= 1, settling to 1."""
        c_values = c_values[:len(r_values)]
        circuit, out = random_rc_ladder(r_values, c_values)
        tau = sum(r_values) * sum(c_values)
        result = simulate(circuit, 12.0 * tau, tau / 100.0)
        v = result.voltage(out)
        # Trapezoidal integration rings around the rails on stiff
        # ladders: with dt = tau/100 a fast pole (min r*c far below the
        # total time constant) is unresolvable and its step response
        # overshoots by up to a few percent before decaying.  That is
        # integration ringing, not a passivity violation, so the rail
        # bounds get a 5 % allowance; the settling check stays tight.
        assert np.all(v >= -0.05)
        assert np.all(v <= 1.05)
        assert v[-1] == pytest.approx(1.0, abs=1e-3)

    @given(r_values=st.lists(resistances, min_size=2, max_size=5),
           c_values=st.lists(capacitances, min_size=5, max_size=5))
    @settings(max_examples=20, deadline=None)
    def test_dc_matches_transient_settling(self, r_values, c_values):
        """The transient end state equals the DC operating point."""
        c_values = c_values[:len(r_values)]
        circuit, out = random_rc_ladder(r_values, c_values)
        tau = sum(r_values) * sum(c_values)
        result = simulate(circuit, 15.0 * tau, tau / 80.0)
        dc = dc_operating_point(circuit, t=100.0 * tau)
        for node, value in result.final_voltages().items():
            assert value == pytest.approx(dc[node], abs=2e-3)

    @given(r=resistances, c=capacitances, l=inductances)
    @settings(max_examples=30, deadline=None)
    def test_series_rlc_settles_to_source(self, r, c, l):
        """Any series RLC driven by a step eventually sits at the source
        voltage with zero current (passivity + correct steady state).

        Extremely high-Q resonators are excluded: a fixed-step run cannot
        affordably resolve thousands of ring cycles, which is a cost
        limit, not a correctness one."""
        from hypothesis import assume
        zeta = 0.5 * r * np.sqrt(c / l)
        assume(zeta > 0.05)
        circuit = Circuit("rlc")
        circuit.voltage_source("V1", "in", GROUND, Step(level=1.0))
        circuit.resistor("R1", "in", "a", r)
        circuit.inductor("L1", "a", "b", l)
        circuit.capacitor("C1", "b", GROUND, c)
        # Longest time scale: RC charge or L/R current decay or LC period.
        period = 2 * np.pi * np.sqrt(l * c)
        t_slow = max(r * c, l / r, period)
        # Resolve the oscillation only when it actually rings (zeta < 1);
        # overdamped cases would otherwise demand ~1e7 steps when the RC
        # time dwarfs the LC period.
        dt = min(t_slow / 40.0, period / 20.0) if zeta < 1.0 \
            else t_slow / 40.0
        result = simulate(circuit, 60.0 * t_slow, dt)
        assert result.voltage("b")[-1] == pytest.approx(1.0, abs=5e-3)
        assert abs(result.branch_current("L1")[-1]) < 1e-4 / r

    @given(r=resistances, c=capacitances)
    @settings(max_examples=20, deadline=None)
    def test_charge_conservation_through_source(self, r, c):
        """Integrated source current equals the delivered charge C*V."""
        circuit = Circuit("q")
        circuit.voltage_source("V1", "in", GROUND, Step(level=1.0))
        circuit.resistor("R1", "in", "out", r)
        circuit.capacitor("C1", "out", GROUND, c)
        tau = r * c
        result = simulate(circuit, 20.0 * tau, tau / 200.0)
        current = result.branch_current("V1")    # a->b through source
        delivered = -np.trapezoid(current, result.time) \
            if hasattr(np, "trapezoid") else -np.trapz(current, result.time)
        assert delivered == pytest.approx(c * 1.0, rel=2e-2)
