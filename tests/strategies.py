"""Shared Hypothesis strategies over physically valid parameter spaces.

One home for every strategy the property suites draw from, so "a
physically plausible interconnect stage" means the same thing in
``tests/test_properties.py``, the verification-layer property tests and
the engine round-trip tests.  Ranges follow the repo's on-chip
conventions: resistance 0.5-50 ohm/mm, capacitance 30-500 pF/m,
inductance 0-10 nH/mm, driver resistance 1-100 kohm, femtofarad device
capacitances, segment lengths 0.1-50 mm and repeater sizes 1-5000 —
every draw is a meaningful stage, not a random float tuple.
"""

from hypothesis import strategies as st

from repro import DriverParams, LineParams, Stage
from repro.verify import VerifyCase

#: Per-length line parasitics (SI: ohm/m, H/m, F/m).
lines = st.builds(
    LineParams,
    r=st.floats(min_value=500.0, max_value=5e4),
    l=st.floats(min_value=0.0, max_value=1e-5),
    c=st.floats(min_value=3e-11, max_value=5e-10),
)

#: Lines with strictly positive inductance (for inductance-effect tests).
inductive_lines = st.builds(
    LineParams,
    r=st.floats(min_value=500.0, max_value=5e4),
    l=st.floats(min_value=1e-9, max_value=1e-5),
    c=st.floats(min_value=3e-11, max_value=5e-10),
)

#: Purely resistive-capacitive lines (the Elmore/RC limit, l = 0).
rc_lines = st.builds(
    LineParams,
    r=st.floats(min_value=500.0, max_value=5e4),
    l=st.just(0.0),
    c=st.floats(min_value=3e-11, max_value=5e-10),
)

#: Minimum-size driver characteristics.
drivers = st.builds(
    DriverParams,
    r_s=st.floats(min_value=1e3, max_value=1e5),
    c_p=st.floats(min_value=0.0, max_value=2e-14),
    c_0=st.floats(min_value=2e-16, max_value=5e-15),
)

#: Segment lengths (m) and repeater sizes used across stage strategies.
segment_lengths = st.floats(min_value=1e-4, max_value=5e-2)
repeater_sizes = st.floats(min_value=1.0, max_value=5e3)

#: Fully sized driver-line-load stages.
stages = st.builds(
    Stage,
    line=lines,
    driver=drivers,
    h=segment_lengths,
    k=repeater_sizes,
)

#: Stages on RC-only lines (overdamped by construction, l = 0).
rc_stages = st.builds(
    Stage,
    line=rc_lines,
    driver=drivers,
    h=segment_lengths,
    k=repeater_sizes,
)

#: Delay threshold fractions, clear of the f -> 0 and f -> 1 boundaries.
thresholds = st.floats(min_value=0.05, max_value=0.95)

#: Fully specified verification cases (stage + threshold).
verify_cases = st.builds(
    lambda stage, f: VerifyCase(
        case_id="hypothesis", line=stage.line, driver=stage.driver,
        h=stage.h, k=stage.k, f=f),
    stage=stages,
    f=thresholds,
)

#: Inductance as a multiple of the sizing's own critical inductance, so a
#: draw lands in a *chosen* damping regime instead of wherever random
#: (l, h, k) happens to fall: < 1 overdamped, = 1 critically damped,
#: > 1 underdamped.
l_crit_factors = st.sampled_from([0.0, 0.4, 1.0, 2.5, 6.0])


def _stage_at_factor(stage, factor):
    from repro import critical_inductance
    # l_crit can be negative when the drain capacitances dominate the
    # line (the stage is underdamped even at l = 0); keep such draws at
    # l = 0 rather than rejecting them.
    l_crit = critical_inductance(stage)
    return stage.with_inductance(factor * l_crit if l_crit > 0.0 else 0.0)


#: Stages spanning all three damping regimes by construction.
regime_stages = st.builds(_stage_at_factor, stage=rc_stages,
                          factor=l_crit_factors)

#: Small batches of regime-spanning stages for the kernel property suite.
stage_batches = st.lists(regime_stages, min_size=1, max_size=6)
