"""Unit tests for the unit conversion helpers."""

import pytest

from repro import units


class TestRoundTrips:
    def test_resistance(self):
        assert units.to_ohm_per_mm(
            units.resistance_per_length_from_ohm_per_mm(4.4)) == \
            pytest.approx(4.4)

    def test_inductance(self):
        assert units.to_nh_per_mm(
            units.inductance_per_length_from_nh_per_mm(2.2)) == \
            pytest.approx(2.2)

    def test_capacitance(self):
        assert units.to_pf_per_m(
            units.capacitance_per_length_from_pf_per_m(203.5)) == \
            pytest.approx(203.5)

    def test_length(self):
        assert units.to_mm(units.length_from_mm(14.4)) == pytest.approx(14.4)


class TestAbsoluteValues:
    def test_resistance_si(self):
        assert units.resistance_per_length_from_ohm_per_mm(4.4) == \
            pytest.approx(4400.0)

    def test_inductance_si(self):
        assert units.inductance_per_length_from_nh_per_mm(1.0) == \
            pytest.approx(1e-6)

    def test_capacitance_si(self):
        assert units.capacitance_per_length_from_pf_per_m(203.5) == \
            pytest.approx(203.5e-12)

    def test_time_and_component_scales(self):
        assert units.to_ps(1e-12) == pytest.approx(1.0)
        assert units.to_ff(1e-15) == pytest.approx(1.0)
        assert units.to_kohm(11784.0) == pytest.approx(11.784)

    def test_physical_constants(self):
        assert units.EPSILON_0 == pytest.approx(8.854e-12, rel=1e-3)
        assert units.MU_0 == pytest.approx(1.2566e-6, rel=1e-3)
        # c = 1/sqrt(eps0 mu0):
        assert units.C_LIGHT == pytest.approx(
            (units.EPSILON_0 * units.MU_0) ** -0.5, rel=1e-9)
