"""Property tests for the kernel-backed optimizer stack (Hypothesis).

Two invariant families from the refactor's contract:

* **Bitwise lane equivalence** — a lane of the 3-lane batched residual
  evaluation (base + both finite-difference probes, exactly what the
  Newton inner loop submits) matches the scalar
  :func:`repro.core.optimize.stationarity_residuals` reference
  bit-for-bit, across all damping regimes and for both float and
  ``np.float64`` operand classes (the two scalar-semantics replicas).
  Exactly-critical poles are NaN in both paths.
* **Trace shape** — every optimization run carries a trace whose
  iteration indices are contiguous from 0, and whose ``fallback`` event
  appears exactly when the AUTO dispatcher actually fell back to the
  direct method.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core.evaluate import StageEvaluator
from repro.core.optimize import (OptimizerMethod, optimize_repeater,
                                 stationarity_residuals)
from repro.errors import (DelaySolverError, OptimizationError,
                          ParameterError)

from tests.strategies import regime_stages, thresholds


def _equal_or_both_nan(a, b):
    return a == b or (math.isnan(a) and math.isnan(b))


def _assert_lane_matches_scalar(stage, f, wrap):
    """One evaluator lane vs the scalar reference, same operand classes."""
    h, k = wrap(stage.h), wrap(stage.k)
    evaluator = StageEvaluator(stage.line, stage.driver, f)
    try:
        expected = stationarity_residuals(stage.line, stage.driver, h, k, f)
    except (DelaySolverError, ParameterError) as error:
        with pytest.raises(type(error)):
            evaluator.evaluate_many(
                [(h, k), (h * (1 + 1e-6), k), (h, k * (1 + 1e-6))])
        return
    base, _, _ = evaluator.evaluate_many(
        [(h, k), (h * (1 + 1e-6), k), (h, k * (1 + 1e-6))])
    for got, want in zip(base[:3], expected):
        assert _equal_or_both_nan(got, want), (got, want)


class TestBatchedResidualsBitwise:
    @given(stage=regime_stages, f=thresholds)
    @settings(max_examples=50, deadline=None)
    def test_float_lane_matches_scalar(self, stage, f):
        _assert_lane_matches_scalar(stage, f, float)

    @given(stage=regime_stages, f=thresholds)
    @settings(max_examples=50, deadline=None)
    def test_numpy_lane_matches_scalar(self, stage, f):
        # np.float64 (h, k) flips both scalar-semantics deciders: the
        # scalar chain runs numpy's reciprocal-style complex division,
        # and the batched replica must follow it bit-for-bit.
        _assert_lane_matches_scalar(stage, f, np.float64)

    @given(stage=regime_stages, f=thresholds)
    @settings(max_examples=25, deadline=None)
    def test_lane_values_are_batch_size_invariant(self, stage, f):
        h, k = float(stage.h), float(stage.k)
        solo = StageEvaluator(stage.line, stage.driver, f)
        padded = StageEvaluator(stage.line, stage.driver, f)
        try:
            alone = solo.evaluate(h, k)
        except (DelaySolverError, ParameterError):
            return
        among = padded.evaluate_many(
            [(2.0 * h, k), (h, k), (h, 3.0 * k)])[1]
        for got, want in zip(among, alone):
            assert _equal_or_both_nan(got, want), (got, want)


class TestTraceShape:
    @given(stage=regime_stages, f=thresholds)
    @settings(max_examples=15, deadline=None)
    def test_trace_invariants_under_auto(self, stage, f):
        try:
            optimum = optimize_repeater(stage.line, stage.driver, f)
        except (OptimizationError, DelaySolverError, ParameterError):
            return
        trace = optimum.trace
        assert trace is not None
        assert trace.steps, "every successful run records steps"
        assert [s.iteration for s in trace.steps] == \
            list(range(len(trace.steps)))
        assert trace.steps[0].step_scale is None
        fell_back = any(e.kind == "fallback" for e in trace.events)
        assert fell_back == (optimum.method is OptimizerMethod.DIRECT)
        assert trace.lanes_evaluated > 0
        assert trace.batch_calls > 0
        assert trace.backtrack_total == \
            sum(s.backtracks for s in trace.steps)
        payload = trace.to_payload()
        assert len(payload["steps"]) == len(trace.steps)
