"""Fixture-snippet tests for every repro-lint rule (RPR001-RPR007).

Each rule gets a positive case (the invariant violation fires on a
committed fixture tree), a negative case (the compliant idiom stays
clean), and a suppression case where the directive grammar interacts
with the rule.  Fixture sources live in string literals and are written
to per-test tmp trees, so the shipped test file itself never trips the
rules it exercises — asserted by the self-run test at the bottom.
"""

import textwrap

from repro.analysis.lint import LintEngine, write_artifact
from repro.analysis.lint.fingerprint import source_fingerprint


def run_lint(root, files, paths=("src", "tests", "benchmarks")):
    """Write ``files`` (rel-path -> source) under ``root`` and lint."""
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
    engine = LintEngine(root)
    return engine.run([p for p in paths if (root / p).exists()])


def rules_fired(report):
    return sorted({f.rule for f in report.findings})


def findings_for(report, rule_id):
    return [f for f in report.findings if f.rule == rule_id]


# ----------------------------------------------------------------------
# RPR001 — blocking calls in async bodies under repro/serve/.
# ----------------------------------------------------------------------
_ASYNC_BLOCKING = """\
    import json
    import time

    async def handler(handle, cache, key, sock):
        raw = open(key).read()
        time.sleep(0.01)
        json.dump({}, handle)
        hit = cache.get(key)
        chunk = sock.recv(4096)
        return raw, hit, chunk
"""

_ASYNC_DEFERRED = """\
    async def handler(backend, key):
        value = await backend.run_io_async(lambda: open(key).read())

        def _write(handle, payload):
            import json
            json.dump(payload, handle)

        await backend.run_io_async(lambda: _write(None, value))
        return value
"""


class TestRPR001:
    def test_fires_on_blocking_calls_in_async_serve(self, tmp_path):
        report = run_lint(tmp_path, {
            "src/repro/serve/service.py": _ASYNC_BLOCKING})
        hits = findings_for(report, "RPR001")
        assert len(hits) == 5
        messages = " ".join(f.message for f in hits)
        for needle in ("open()", "time.sleep()", "json.dump()",
                       "cache.get()", "sock.recv()"):
            assert needle in messages

    def test_deferred_thunks_are_exempt(self, tmp_path):
        report = run_lint(tmp_path, {
            "src/repro/serve/service.py": _ASYNC_DEFERRED})
        assert findings_for(report, "RPR001") == []

    def test_only_scopes_to_serve_layer(self, tmp_path):
        report = run_lint(tmp_path, {
            "src/repro/engine/worker.py": _ASYNC_BLOCKING})
        assert findings_for(report, "RPR001") == []

    def test_sync_functions_in_serve_are_exempt(self, tmp_path):
        sync = _ASYNC_BLOCKING.replace("async def", "def")
        report = run_lint(tmp_path, {
            "src/repro/serve/service.py": sync})
        assert findings_for(report, "RPR001") == []

    def test_trailing_suppression_moves_finding_to_suppressed(
            self, tmp_path):
        source = (
            "async def handler(key):\n"
            "    return open(key).read()  "
            "# repro: ignore[RPR001] -- fixture exemption\n")
        report = run_lint(tmp_path, {
            "src/repro/serve/service.py": source})
        assert findings_for(report, "RPR001") == []
        assert len(report.suppressed) == 1
        finding, justification = report.suppressed[0]
        assert finding.rule == "RPR001"
        assert justification == "fixture exemption"
        assert report.clean


# ----------------------------------------------------------------------
# RPR002 — fault-site registry consistency.
# ----------------------------------------------------------------------
_PLAN_TWO_SITES = """\
    class FaultPoint:
        def __init__(self, name, description, scenario, kind):
            self.name = name

    FAULT_POINTS = {
        p.name: p for p in (
            FaultPoint("cache.get.os_error", "d", "serve", "error"),
            FaultPoint("cache.put.orphaned", "d", "serve", "error"),
        )
    }
"""

_HOOK_CALLERS = """\
    from repro.faults import hooks

    def read_record(key):
        hooks.fire("cache.get.os_error")
        if hooks.should("cache.get.unregistered"):
            return None
        return key
"""


class TestRPR002:
    def test_unregistered_call_and_orphaned_registration(self, tmp_path):
        report = run_lint(tmp_path, {
            "src/repro/faults/plan.py": _PLAN_TWO_SITES,
            "src/repro/engine/cache.py": _HOOK_CALLERS})
        hits = findings_for(report, "RPR002")
        assert len(hits) == 2
        by_path = {f.path: f.message for f in hits}
        assert "unregistered site 'cache.get.unregistered'" in \
            by_path["src/repro/engine/cache.py"]
        assert "registered fault site 'cache.put.orphaned' has no " \
            "hook call site" in by_path["src/repro/faults/plan.py"]

    def test_consistent_registry_is_clean(self, tmp_path):
        callers = _HOOK_CALLERS.replace(
            'hooks.should("cache.get.unregistered")',
            'hooks.should("cache.put.orphaned")')
        report = run_lint(tmp_path, {
            "src/repro/faults/plan.py": _PLAN_TWO_SITES,
            "src/repro/engine/cache.py": callers})
        assert findings_for(report, "RPR002") == []

    def test_deleting_a_registration_fails_the_run(self, tmp_path):
        # The acceptance scenario: a fault site's registration is
        # deleted while its seam still fires — the run must fail.
        plan = _PLAN_TWO_SITES.replace(
            '            FaultPoint("cache.get.os_error", "d", "serve",'
            ' "error"),\n', "")
        callers = _HOOK_CALLERS.replace(
            'hooks.should("cache.get.unregistered")',
            'hooks.should("cache.put.orphaned")')
        report = run_lint(tmp_path, {
            "src/repro/faults/plan.py": plan,
            "src/repro/engine/cache.py": callers})
        hits = findings_for(report, "RPR002")
        assert len(hits) == 1
        assert "unregistered site 'cache.get.os_error'" in \
            hits[0].message
        assert report.exit_code == 1

    def test_no_registry_in_scanned_tree_is_a_no_op(self, tmp_path):
        report = run_lint(tmp_path, {
            "src/repro/engine/cache.py": _HOOK_CALLERS})
        assert findings_for(report, "RPR002") == []


# ----------------------------------------------------------------------
# RPR003 — cache-salt fingerprint drift.
# ----------------------------------------------------------------------
_SALT_TREE = {
    "src/repro/__init__.py": '__version__ = "0.1.0"\n',
    "src/repro/engine/store.py": 'ENGINE_SCHEMA_VERSION = "s1"\n',
    "src/repro/core/kernels.py": """\
        def solve(x):
            \"\"\"Original prose.\"\"\"
            return x * 2
    """,
}


def _write_tree(root, files):
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")


class TestRPR003:
    def test_missing_artifact_fires(self, tmp_path):
        report = run_lint(tmp_path, _SALT_TREE)
        hits = findings_for(report, "RPR003")
        assert len(hits) == 1
        assert "artifact is missing" in hits[0].message

    def test_blessed_tree_is_clean(self, tmp_path):
        _write_tree(tmp_path, _SALT_TREE)
        write_artifact(tmp_path)
        report = run_lint(tmp_path, {})
        assert findings_for(report, "RPR003") == []

    def test_code_edit_without_version_bump_fires(self, tmp_path):
        _write_tree(tmp_path, _SALT_TREE)
        write_artifact(tmp_path)
        report = run_lint(tmp_path, {
            "src/repro/core/kernels.py": """\
                def solve(x):
                    return x * 3
            """})
        hits = findings_for(report, "RPR003")
        assert len(hits) == 1
        assert "changed but repro.__version__ is still '0.1.0'" in \
            hits[0].message
        assert hits[0].path == "src/repro/core/kernels.py"

    def test_docstring_edit_does_not_fire(self, tmp_path):
        _write_tree(tmp_path, _SALT_TREE)
        write_artifact(tmp_path)
        report = run_lint(tmp_path, {
            "src/repro/core/kernels.py": """\
                def solve(x):
                    \"\"\"Rewritten prose, same numerics.\"\"\"
                    return x * 2
            """})
        assert findings_for(report, "RPR003") == []

    def test_version_bump_without_refresh_fires(self, tmp_path):
        _write_tree(tmp_path, _SALT_TREE)
        write_artifact(tmp_path)
        report = run_lint(tmp_path, {
            "src/repro/__init__.py": '__version__ = "0.2.0"\n'})
        hits = findings_for(report, "RPR003")
        assert len(hits) == 1
        assert "refresh it with" in hits[0].message

    def test_bump_plus_refresh_is_clean(self, tmp_path):
        _write_tree(tmp_path, _SALT_TREE)
        _write_tree(tmp_path, {
            "src/repro/__init__.py": '__version__ = "0.2.0"\n',
            "src/repro/core/kernels.py": """\
                def solve(x):
                    return x * 3
            """})
        write_artifact(tmp_path)
        report = run_lint(tmp_path, {})
        assert findings_for(report, "RPR003") == []

    def test_fingerprint_ignores_comments_and_docstrings(self):
        base = "def f(x):\n    return x + 1\n"
        prose = ('def f(x):\n    """Say things."""\n'
                 "    # a comment\n    return x + 1\n")
        changed = "def f(x):\n    return x + 2\n"
        assert source_fingerprint(base) == source_fingerprint(prose)
        assert source_fingerprint(base) != source_fingerprint(changed)


# ----------------------------------------------------------------------
# RPR004 — strict JSON on engine/serve payload paths.
# ----------------------------------------------------------------------
_JSON_MIXED = """\
    import json

    def encode(payload):
        return json.dumps(payload, sort_keys=True)

    def encode_strict(payload):
        return json.dumps(payload, sort_keys=True, allow_nan=False)

    def write(payload, handle):
        json.dump(payload, handle, allow_nan=False)
"""


class TestRPR004:
    def test_fires_only_on_lax_encodes_in_engine(self, tmp_path):
        report = run_lint(tmp_path, {
            "src/repro/engine/report.py": _JSON_MIXED})
        hits = findings_for(report, "RPR004")
        assert len(hits) == 1
        assert "allow_nan=False" in hits[0].message
        assert hits[0].line == 4

    def test_serve_layer_is_also_in_scope(self, tmp_path):
        report = run_lint(tmp_path, {
            "src/repro/serve/wire.py": _JSON_MIXED})
        assert len(findings_for(report, "RPR004")) == 1

    def test_other_layers_are_out_of_scope(self, tmp_path):
        report = run_lint(tmp_path, {
            "src/repro/verify/report.py": _JSON_MIXED})
        assert findings_for(report, "RPR004") == []


# ----------------------------------------------------------------------
# RPR005 — tolerance-ledger discipline.
# ----------------------------------------------------------------------
_LEDGER_ROUTED_TEST = """\
    from repro.verify import unit_tolerance

    def test_mixed(approx):
        assert approx(1.0, rel=1e-3)
        assert approx(1.0, rel=unit_tolerance("suite.case.rel"))
        assert approx(0.0, abs=-1e-9)
"""

_UNADOPTED_TEST = """\
    def test_legacy(approx):
        assert approx(1.0, rel=1e-3)
"""


class TestRPR005:
    def test_fires_on_raw_literals_in_ledger_routed_module(
            self, tmp_path):
        report = run_lint(tmp_path, {
            "tests/test_fixture_tol.py": _LEDGER_ROUTED_TEST})
        hits = findings_for(report, "RPR005")
        assert len(hits) == 2
        assert "rel=0.001" in hits[0].message
        assert "abs=-1e-09" in hits[1].message

    def test_unadopted_module_is_out_of_scope(self, tmp_path):
        report = run_lint(tmp_path, {
            "tests/test_fixture_legacy.py": _UNADOPTED_TEST})
        assert findings_for(report, "RPR005") == []

    def test_src_modules_are_out_of_scope(self, tmp_path):
        report = run_lint(tmp_path, {
            "src/repro/verify/checks.py": _LEDGER_ROUTED_TEST})
        assert findings_for(report, "RPR005") == []

    def test_benchmarks_are_in_scope(self, tmp_path):
        report = run_lint(tmp_path, {
            "benchmarks/bench_fixture.py": _LEDGER_ROUTED_TEST})
        assert len(findings_for(report, "RPR005")) == 2


# ----------------------------------------------------------------------
# RPR006 — lock discipline in store/batcher/metrics.
# ----------------------------------------------------------------------
_LOCKED_STORE = """\
    import threading

    class Store:
        def __init__(self):
            self._lock = threading.Lock()
            self.count = 0

        def put(self):
            with self._lock:
                self.count += 1

        def racy_read(self):
            return self.count

        def guarded_read(self):
            with self._lock:
                return self.count

        def _sweep_locked(self):
            return self.count
"""


class TestRPR006:
    def test_fires_on_unlocked_access_to_guarded_attribute(
            self, tmp_path):
        report = run_lint(tmp_path, {
            "src/repro/engine/store.py": _LOCKED_STORE})
        hits = findings_for(report, "RPR006")
        assert len(hits) == 1
        assert "self.count" in hits[0].message
        assert "read here without one" in hits[0].message

    def test_init_and_locked_helpers_are_exempt(self, tmp_path):
        report = run_lint(tmp_path, {
            "src/repro/engine/store.py": _LOCKED_STORE})
        lines = {f.line for f in findings_for(report, "RPR006")}
        # Only racy_read's body line fires; __init__, guarded_read and
        # _sweep_locked contribute nothing.
        assert len(lines) == 1

    def test_only_scopes_to_lock_files(self, tmp_path):
        report = run_lint(tmp_path, {
            "src/repro/engine/journal.py": _LOCKED_STORE})
        assert findings_for(report, "RPR006") == []

    def test_class_without_locks_is_clean(self, tmp_path):
        report = run_lint(tmp_path, {
            "src/repro/engine/store.py": """\
                class Store:
                    def __init__(self):
                        self.count = 0

                    def bump(self):
                        self.count += 1
            """})
        assert findings_for(report, "RPR006") == []


# ----------------------------------------------------------------------
# RPR007 — swallowed broad exceptions.
# ----------------------------------------------------------------------
_SWALLOWS = """\
    def swallow_exception(op):
        try:
            op()
        except Exception:
            pass

    def swallow_bare(op):
        try:
            op()
        except:
            pass

    def swallow_in_tuple(op):
        try:
            op()
        except (OSError, Exception):
            pass

    def narrow_is_fine(op):
        try:
            op()
        except ValueError:
            pass

    def handled_is_fine(op, log):
        try:
            op()
        except Exception:
            log("op failed")
"""


class TestRPR007:
    def test_fires_on_pass_only_broad_handlers(self, tmp_path):
        report = run_lint(tmp_path, {
            "src/repro/engine/worker.py": _SWALLOWS})
        hits = findings_for(report, "RPR007")
        assert len(hits) == 3
        messages = [f.message for f in hits]
        assert any("except Exception" in m for m in messages)
        assert any("bare except" in m for m in messages)
        assert any("(OSError, Exception)" in m for m in messages)

    def test_standalone_suppression_targets_the_next_code_line(
            self, tmp_path):
        source = (
            "def f(op):\n"
            "    try:\n"
            "        op()\n"
            "    # repro: ignore[RPR007] -- teardown is best-effort\n"
            "    except Exception:\n"
            "        pass\n")
        report = run_lint(tmp_path, {
            "src/repro/engine/worker.py": source})
        assert findings_for(report, "RPR007") == []
        assert len(report.suppressed) == 1
        assert report.suppressed[0][1] == "teardown is best-effort"


# ----------------------------------------------------------------------
# Suppression hygiene (RPR900/RPR901) against real rule firings.
# ----------------------------------------------------------------------
class TestSuppressionHygiene:
    def test_empty_justification_is_rpr900(self, tmp_path):
        source = (
            "def f(op):\n"
            "    try:\n"
            "        op()\n"
            "    except Exception:  # repro: ignore[RPR007] -- \n"
            "        pass\n")
        report = run_lint(tmp_path, {
            "src/repro/engine/worker.py": source})
        hits = findings_for(report, "RPR900")
        assert len(hits) == 1
        assert "empty justification" in hits[0].message
        # The underlying finding still fires: a malformed directive
        # never suppresses.
        assert len(findings_for(report, "RPR007")) == 1

    def test_malformed_directive_is_rpr900(self, tmp_path):
        source = (
            "def f(op):\n"
            "    try:\n"
            "        op()\n"
            "    except Exception:  # repro: ignore RPR007 no brackets\n"
            "        pass\n")
        report = run_lint(tmp_path, {
            "src/repro/engine/worker.py": source})
        hits = findings_for(report, "RPR900")
        assert len(hits) == 1
        assert "malformed suppression" in hits[0].message

    def test_unused_suppression_is_rpr901(self, tmp_path):
        source = (
            "def f(op):\n"
            "    return op()  "
            "# repro: ignore[RPR007] -- nothing fires here\n")
        report = run_lint(tmp_path, {
            "src/repro/engine/worker.py": source})
        hits = findings_for(report, "RPR901")
        assert len(hits) == 1
        assert "unused" in hits[0].message
        assert not report.clean

    def test_multi_rule_directive_covers_both(self, tmp_path):
        source = (
            "import json\n"
            "async def handler(handle):\n"
            "    json.dump({}, handle)  "
            "# repro: ignore[RPR001, RPR004] -- fixture exemption\n")
        report = run_lint(tmp_path, {
            "src/repro/serve/service.py": source})
        assert findings_for(report, "RPR001") == []
        assert findings_for(report, "RPR004") == []
        assert len(report.suppressed) == 2
        assert report.clean


# ----------------------------------------------------------------------
# The shipped tree must pass its own gate.
# ----------------------------------------------------------------------
class TestSelfRun:
    def test_repo_is_clean_under_its_own_rules(self, repo_root):
        engine = LintEngine(repo_root)
        report = engine.run(
            [p for p in ("src", "tests", "benchmarks")
             if (repo_root / p).exists()])
        assert report.parse_errors == []
        assert report.findings == [], report.format_text()
        assert report.clean and report.exit_code == 0
        # Every deliberate exemption is a justified inline suppression,
        # not a baseline entry.
        assert report.baseline_consumed == 0
        for finding, justification in report.suppressed:
            assert justification.strip()
