"""Unit tests for the oracle registry and individual oracles."""

import math

import pytest

from repro import Stage, compute_moments, threshold_delay
from repro.errors import ParameterError
from repro.verify import (ORACLES, DelayObservation, VerifyCase,
                          case_for_regime, evaluate, get_oracle,
                          oracle_names, register_oracle)
from repro.verify.oracles import Oracle


@pytest.fixture
def case(generic_line, generic_driver):
    return VerifyCase(case_id="unit", line=generic_line,
                      driver=generic_driver, h=2e-3, k=100.0, f=0.5)


class TestRegistry:
    def test_all_six_oracles_registered(self):
        assert oracle_names() == ["elmore", "ismail_friedman", "kahng_muddu",
                                  "mna", "talbot", "two_pole"]

    def test_expensive_excluded_on_request(self):
        cheap = oracle_names(include_expensive=False)
        assert "mna" not in cheap
        assert "two_pole" in cheap

    def test_unknown_oracle_error_names_known(self):
        with pytest.raises(KeyError, match="two_pole"):
            get_oracle("spice")

    def test_register_requires_name(self):
        with pytest.raises(ValueError):
            register_oracle(Oracle())

    def test_register_latest_wins(self):
        class FakeTwoPole(Oracle):
            name = "two_pole"

        original = ORACLES["two_pole"]
        try:
            register_oracle(FakeTwoPole())
            assert isinstance(get_oracle("two_pole"), FakeTwoPole)
        finally:
            ORACLES["two_pole"] = original


class TestDelayObservation:
    def test_round_trip(self):
        obs = DelayObservation(oracle="two_pole", tau=1.5e-10, threshold=0.5,
                               damping="overdamped", extras={"n": 3})
        assert DelayObservation.from_dict(obs.to_dict()) == obs

    def test_extras_copied_not_aliased(self):
        extras = {"n": 3}
        obs = DelayObservation(oracle="o", tau=1.0, threshold=0.5,
                               damping="overdamped", extras=extras)
        obs.to_dict()["extras"]["n"] = 99
        assert obs.extras["n"] == 3


class TestTwoPoleOracle:
    def test_matches_threshold_delay(self, case):
        obs = evaluate(case, "two_pole")
        expected = threshold_delay(case.stage(), case.f,
                                   polish_with_newton=True)
        assert obs.tau == expected.tau
        assert obs.damping == expected.damping.value


class TestElmoreOracle:
    def test_half_threshold_is_ln2_b1(self, case):
        obs = evaluate(case, "elmore")
        b1 = compute_moments(case.stage()).b1
        assert obs.tau == pytest.approx(math.log(2.0) * b1, rel=1e-12)

    def test_inductance_blind(self, case):
        heavier = VerifyCase(
            case_id="unit-l", line=case.line.with_inductance(5 * case.line.l),
            driver=case.driver, h=case.h, k=case.k, f=case.f)
        assert evaluate(case, "elmore").tau == \
            evaluate(heavier, "elmore").tau


class TestIsmailFriedmanOracle:
    def test_supports_only_half_threshold(self, case):
        oracle = get_oracle("ismail_friedman")
        assert oracle.supports(case)
        off = VerifyCase(case_id="unit", line=case.line, driver=case.driver,
                         h=case.h, k=case.k, f=0.9)
        assert not oracle.supports(off)
        with pytest.raises(ParameterError, match="f = 0.5"):
            oracle.evaluate(off)

    def test_matches_published_fit(self, case):
        moments = compute_moments(case.stage())
        zeta = moments.b1 / (2.0 * math.sqrt(moments.b2))
        omega_n = 1.0 / math.sqrt(moments.b2)
        expected = (math.exp(-2.9 * zeta ** 1.35) + 1.48 * zeta) / omega_n
        assert evaluate(case, "ismail_friedman").tau == \
            pytest.approx(expected, rel=1e-12)


class TestSampledOracles:
    def test_talbot_agrees_with_two_pole_overdamped(self):
        case = case_for_regime("250nm", "overdamped", 0.5)
        two_pole = evaluate(case, "two_pole")
        talbot = evaluate(case, "talbot")
        assert talbot.tau == pytest.approx(two_pole.tau, rel=0.2)
        assert talbot.extras["grid_points"] == 400

    def test_talbot_deterministic(self):
        case = case_for_regime("250nm", "underdamped", 0.5)
        assert evaluate(case, "talbot").to_dict() == \
            evaluate(case, "talbot").to_dict()

    @pytest.mark.slow
    def test_mna_agrees_with_talbot(self):
        case = case_for_regime("100nm", "underdamped", 0.5)
        mna = evaluate(case, "mna")
        talbot = evaluate(case, "talbot")
        assert mna.tau == pytest.approx(talbot.tau, rel=0.05)
        assert mna.extras["segments"] == 20

    def test_damping_consistent_across_oracles(self, case):
        labels = {evaluate(case, name).damping
                  for name in ("two_pole", "elmore", "kahng_muddu", "talbot")}
        assert len(labels) == 1
