"""Tests for the fault-plan core: rules, determinism, serialization.

The plan layer carries the whole replay contract — a plan string plus
the same traffic must produce the same event sequence — so these tests
pin serialization round-trips, per-site PRNG stream independence,
invocation-counted rule modes and per-thread suspension.
"""

import json
import threading

import pytest

from repro.faults import FAULT_POINTS, FaultPlan, FaultRule, hooks
from repro.errors import OptimizationError


class TestFaultRule:
    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultRule(site="cache.get.no_such_site")

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown fault mode"):
            FaultRule(site="cache.get.os_error", mode="sometimes")

    def test_unknown_exception_rejected(self):
        with pytest.raises(ValueError, match="unknown exception"):
            FaultRule(site="cache.get.os_error", exc="KeyboardInterrupt")

    def test_action_defaults_to_site_default(self):
        rule = FaultRule(site="cache.get.torn_record")
        assert rule.resolved_action == "truncate"
        assert FaultRule(site="cache.get.os_error").resolved_action \
            == "raise"

    @pytest.mark.parametrize("mode,n,hits", [
        ("always", 1, [1, 2, 3, 4]),
        ("first", 2, [1, 2]),
        ("nth", 3, [3]),
    ])
    def test_counted_modes(self, mode, n, hits):
        import random

        rule = FaultRule(site="executor.job.error", mode=mode, n=n)
        rng = random.Random(0)
        fired = [hit for hit in range(1, 5) if rule.matches(hit, rng)]
        assert fired == hits


class TestPlanSerialization:
    def test_round_trip(self):
        plan = FaultPlan(seed=7, rules=[
            FaultRule(site="cache.get.torn_record", mode="nth", n=2,
                      fraction=0.25),
            FaultRule(site="executor.job.error", mode="prob", p=0.5,
                      exc="OptimizationError"),
        ])
        text = plan.to_string()
        clone = FaultPlan.from_string(text)
        assert clone.seed == 7
        assert clone.to_string() == text
        assert [rule.to_dict() for rule in clone.rules] \
            == [rule.to_dict() for rule in plan.rules]

    def test_plan_string_is_compact_sorted_json(self):
        plan = FaultPlan(seed=3,
                         rules=[FaultRule(site="cache.put.os_error")])
        data = json.loads(plan.to_string())
        assert data == {"seed": 3, "rules": [
            {"site": "cache.put.os_error", "mode": "nth", "n": 1}]}

    def test_malformed_plan_string_rejected(self):
        with pytest.raises(ValueError, match="not valid JSON"):
            FaultPlan.from_string("{nope")
        with pytest.raises(ValueError, match="JSON object"):
            FaultPlan.from_string("[1,2]")


class TestDeterminism:
    def test_prob_stream_is_per_site_and_replayable(self):
        def draw_sequence(interleave):
            plan = FaultPlan(seed=99, rules=[
                FaultRule(site="cache.get.os_error", mode="prob", p=0.5),
                FaultRule(site="executor.job.error", mode="prob", p=0.5),
            ])
            for site in interleave:
                plan.trigger(site)
            return [(event.site, event.hit) for event in plan.events]

        a = ["cache.get.os_error"] * 6 + ["executor.job.error"] * 6
        b = [site for pair in zip(["cache.get.os_error"] * 6,
                                  ["executor.job.error"] * 6)
             for site in pair]
        # Same per-site traffic, different interleaving: each site's
        # decisions must be identical (per-site PRNG streams).
        fired_a = draw_sequence(a)
        fired_b = draw_sequence(b)
        assert {s for s, _ in fired_a} <= {"cache.get.os_error",
                                           "executor.job.error"}
        for site in ("cache.get.os_error", "executor.job.error"):
            assert [h for s, h in fired_a if s == site] \
                == [h for s, h in fired_b if s == site]

    def test_event_log_sequence_numbers_are_global(self):
        plan = FaultPlan(seed=0, rules=[
            FaultRule(site="cache.get.os_error", mode="always"),
            FaultRule(site="executor.job.error", mode="always")])
        plan.trigger("cache.get.os_error")
        plan.trigger("executor.job.error")
        plan.trigger("cache.get.os_error")
        assert [event.seq for event in plan.events] == [1, 2, 3]
        log = plan.event_log()
        assert log[0].startswith("#1 cache.get.os_error hit=1")
        assert log[2].startswith("#3 cache.get.os_error hit=2")

    def test_unregistered_site_trigger_raises(self):
        plan = FaultPlan()
        with pytest.raises(ValueError, match="unregistered fault site"):
            plan.trigger("made.up.site")


class TestSuspension:
    def test_suspended_consumes_no_hits_or_draws(self):
        plan = FaultPlan(seed=1, rules=[
            FaultRule(site="cache.get.os_error", mode="nth", n=2)])
        plan.trigger("cache.get.os_error")
        with plan.suspended():
            for _ in range(10):
                assert plan.trigger("cache.get.os_error") is None
        assert plan.hit_count("cache.get.os_error") == 1
        # The 2nd *unsuspended* invocation still fires.
        assert plan.trigger("cache.get.os_error") is not None

    def test_suspension_is_per_thread(self):
        plan = FaultPlan(seed=1, rules=[
            FaultRule(site="cache.get.os_error", mode="always")])
        fired_on_worker = []

        def worker():
            fired_on_worker.append(
                plan.trigger("cache.get.os_error") is not None)

        with plan.suspended():
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
            assert plan.trigger("cache.get.os_error") is None
        assert fired_on_worker == [True]


class TestHooks:
    def test_inactive_helpers_are_passthrough(self):
        assert hooks.ACTIVE is None
        hooks.fire("cache.get.os_error")  # no-op, nothing raised
        assert hooks.should("cache.put.stale_tmp") is False
        assert hooks.delay_duration("executor.job.hang") == 0.0
        assert hooks.mutate("cache.get.torn_record", "abcd") == "abcd"
        assert hooks.pick_lane("serve.optimize.lane_error", 4) is None

    def test_active_context_installs_and_restores(self):
        plan = FaultPlan(seed=5, rules=[
            FaultRule(site="cache.get.os_error", mode="always")])
        with hooks.active(plan) as installed:
            assert hooks.ACTIVE is installed is plan
            with pytest.raises(OSError, match="injected fault at "
                                              "cache.get.os_error"):
                hooks.fire("cache.get.os_error")
        assert hooks.ACTIVE is None

    def test_fire_uses_configured_exception(self):
        plan = FaultPlan(rules=[FaultRule(site="executor.job.error",
                                          mode="always",
                                          exc="OptimizationError")])
        with hooks.active(plan):
            with pytest.raises(OptimizationError):
                hooks.fire("executor.job.error")

    def test_mutate_truncates_and_drops(self):
        plan = FaultPlan(seed=2, rules=[
            FaultRule(site="cache.get.torn_record", mode="always",
                      fraction=0.5),
            FaultRule(site="batcher.envelope.malformed", mode="always")])
        with hooks.active(plan):
            assert hooks.mutate("cache.get.torn_record", "abcdef") \
                == "abc"
            dropped = hooks.mutate("batcher.envelope.malformed",
                                   [1, 2, 3, 4])
            assert len(dropped) == 3

    def test_env_round_trip(self):
        from repro.faults.hooks import FAULTS_ENV, _install_from_env
        import os

        plan = FaultPlan(seed=9, rules=[
            FaultRule(site="cache.put.os_error", mode="nth", n=1)])
        os.environ[FAULTS_ENV] = plan.to_string()
        try:
            _install_from_env()
            assert hooks.ACTIVE is not None
            assert hooks.ACTIVE.to_string() == plan.to_string()
        finally:
            del os.environ[FAULTS_ENV]
            hooks.uninstall()

    def test_nan_lanes_poisons_one_seeded_lane(self):
        import numpy as np

        plan = FaultPlan(seed=4, rules=[
            FaultRule(site="kernels.threshold_delay.nan_lane",
                      mode="always")])
        tau = np.linspace(1.0, 2.0, 8)
        with hooks.active(plan):
            poisoned = hooks.nan_lanes(
                "kernels.threshold_delay.nan_lane", tau)
        assert np.isnan(poisoned).sum() == 1
        assert np.all(np.isfinite(tau))  # input untouched (copy)


def test_registry_sites_have_scenarios_and_descriptions():
    assert len(FAULT_POINTS) == 21
    for name, point in FAULT_POINTS.items():
        assert point.name == name
        assert point.scenario in ("cache", "engine", "serve", "backend",
                                  "store")
        assert point.description
