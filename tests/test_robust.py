"""Unit tests for the minimax (robust) repeater sizing."""

import numpy as np
import pytest

from repro import Stage, optimize_repeater, threshold_delay, units
from repro.core.robust import (optimize_robust, regret_analysis,
                               worst_case_delay_per_length)
from repro.errors import ParameterError


L_MIN = 0.2 * units.NH_PER_MM
L_MAX = 3.0 * units.NH_PER_MM


class TestMonotonicity:
    def test_delay_monotone_in_l_at_fixed_sizing(self, node, rc_opt):
        """The structural fact the minimax shortcut relies on."""
        taus = []
        for l_nh in (0.0, 0.5, 1.0, 2.0, 4.0):
            stage = Stage(line=node.line_with_inductance(
                l_nh * units.NH_PER_MM), driver=node.driver,
                h=rc_opt.h_opt, k=rc_opt.k_opt)
            taus.append(threshold_delay(stage,
                                        polish_with_newton=False).tau)
        assert taus == sorted(taus)


class TestRobustOptimum:
    def test_worst_case_at_lmax(self, node):
        robust = optimize_robust(node.line, node.driver,
                                 l_min=L_MIN, l_max=L_MAX)
        assert robust.worst_case_l == pytest.approx(L_MAX)
        assert robust.h_opt == robust.nominal_at_lmax.h_opt

    def test_minimax_beats_other_sizings_at_worst_case(self, node):
        """No other candidate sizing has a lower worst-case objective."""
        robust = optimize_robust(node.line, node.driver,
                                 l_min=L_MIN, l_max=L_MAX)
        grid = np.linspace(L_MIN, L_MAX, 5)
        for l_design in (L_MIN, 0.5 * (L_MIN + L_MAX)):
            other = optimize_repeater(
                node.line.with_inductance(l_design), node.driver)
            worst_other, _ = worst_case_delay_per_length(
                node.line, node.driver, other.h_opt, other.k_opt, grid)
            assert worst_other >= robust.worst_delay_per_length \
                * (1.0 - 1e-9)

    def test_delay_at_helper(self, node):
        robust = optimize_robust(node.line, node.driver,
                                 l_min=L_MIN, l_max=L_MAX)
        at_max = robust.delay_per_length_at(node.line, node.driver, L_MAX)
        assert at_max == pytest.approx(robust.worst_delay_per_length,
                                       rel=1e-6)
        assert robust.delay_per_length_at(node.line, node.driver,
                                          L_MIN) < at_max

    def test_validation(self, node):
        with pytest.raises(ParameterError):
            optimize_robust(node.line, node.driver, l_min=-1.0, l_max=1e-6)
        with pytest.raises(ParameterError):
            optimize_robust(node.line, node.driver, l_min=1e-6, l_max=1e-6)


class TestRegret:
    @pytest.fixture(scope="class")
    def rows_100nm(self):
        from repro import NODE_100NM
        return regret_analysis(NODE_100NM.line, NODE_100NM.driver,
                               l_min=L_MIN, l_max=L_MAX, grid_points=5)

    def test_candidates_present(self, rows_100nm):
        labels = [row.label for row in rows_100nm]
        assert "rc-blind" in labels
        assert any("minimax" in label for label in labels)

    def test_minimax_has_lowest_worst_delay(self, rows_100nm):
        by_label = {row.label: row for row in rows_100nm}
        minimax = next(row for row in rows_100nm if "minimax" in row.label)
        for row in rows_100nm:
            assert row.worst_delay_per_length >= \
                minimax.worst_delay_per_length * (1.0 - 1e-9)

    def test_regret_nonnegative_and_bounded(self, rows_100nm):
        for row in rows_100nm:
            assert row.worst_regret >= -1e-9
            assert row.worst_regret < 0.25      # all hedges cost < 25%

    def test_rc_blind_worst_regret_exceeds_minimax(self, rows_100nm):
        by = {row.label: row.worst_regret for row in rows_100nm}
        minimax_label = next(l for l in by if "minimax" in l)
        assert by["rc-blind"] > by[minimax_label]
