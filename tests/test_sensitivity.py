"""Unit tests for the analytic delay-sensitivity module."""

import dataclasses

import pytest

from repro import (DriverParams, LineParams, Stage, optimize_repeater,
                   threshold_delay, units)
from repro.core.sensitivity import (PARAMETERS, delay_sensitivities,
                                    moment_parameter_derivatives)
from repro.errors import ParameterError


def perturbed_stage(stage: Stage, parameter: str, value: float) -> Stage:
    """Rebuild a stage with one named parameter replaced."""
    line = stage.line
    driver = stage.driver
    if parameter in ("r", "l", "c"):
        line = LineParams(**{**dataclasses.asdict(line), parameter: value})
    elif parameter in ("r_s", "c_p", "c_0"):
        driver = DriverParams(**{**dataclasses.asdict(driver),
                                 parameter: value})
    return Stage(line=line, driver=driver,
                 h=value if parameter == "h" else stage.h,
                 k=value if parameter == "k" else stage.k)


def numeric_dtau(stage: Stage, parameter: str, f: float) -> float:
    values = {"r": stage.line.r, "l": stage.line.l, "c": stage.line.c,
              "r_s": stage.driver.r_s, "c_p": stage.driver.c_p,
              "c_0": stage.driver.c_0, "h": stage.h, "k": stage.k}
    p0 = values[parameter]
    eps = 1e-5 * p0 if p0 != 0.0 else 1e-12
    hi = threshold_delay(perturbed_stage(stage, parameter, p0 + eps), f,
                         polish_with_newton=False).tau
    lo = threshold_delay(perturbed_stage(stage, parameter, p0 - eps), f,
                         polish_with_newton=False).tau
    return (hi - lo) / (2.0 * eps)


class TestMomentParameterDerivatives:
    @pytest.mark.parametrize("parameter", PARAMETERS)
    def test_match_finite_differences(self, stage_rlc, parameter):
        from repro import compute_moments
        derivs = moment_parameter_derivatives(stage_rlc)[parameter]
        values = {"r": stage_rlc.line.r, "l": stage_rlc.line.l,
                  "c": stage_rlc.line.c, "r_s": stage_rlc.driver.r_s,
                  "c_p": stage_rlc.driver.c_p, "c_0": stage_rlc.driver.c_0,
                  "h": stage_rlc.h, "k": stage_rlc.k}
        p0 = values[parameter]
        eps = 1e-6 * p0
        m_hi = compute_moments(perturbed_stage(stage_rlc, parameter,
                                               p0 + eps))
        m_lo = compute_moments(perturbed_stage(stage_rlc, parameter,
                                               p0 - eps))
        fd_b1 = (m_hi.b1 - m_lo.b1) / (2.0 * eps)
        fd_b2 = (m_hi.b2 - m_lo.b2) / (2.0 * eps)
        assert derivs[0] == pytest.approx(fd_b1, rel=1e-4, abs=1e-20)
        assert derivs[1] == pytest.approx(fd_b2, rel=1e-4, abs=1e-32)


class TestDelaySensitivities:
    @pytest.mark.parametrize("parameter", PARAMETERS)
    @pytest.mark.parametrize("l_nh", [0.5, 2.0])
    def test_match_finite_differences(self, node, rc_opt, parameter, l_nh):
        line = node.line_with_inductance(l_nh * units.NH_PER_MM)
        stage = Stage(line=line, driver=node.driver,
                      h=rc_opt.h_opt, k=rc_opt.k_opt)
        analytic = delay_sensitivities(stage).absolute[parameter]
        numeric = numeric_dtau(stage, parameter, 0.5)
        assert analytic == pytest.approx(numeric, rel=1e-3, abs=1e-18)

    def test_stationarity_at_the_optimum(self, node):
        """At (h_opt, k_opt): dtau/dk = 0 and dtau/dh = tau/h — the
        optimizer's first-order conditions recovered independently."""
        line = node.line_with_inductance(1.0 * units.NH_PER_MM)
        optimum = optimize_repeater(line, node.driver)
        stage = Stage(line=line, driver=node.driver,
                      h=optimum.h_opt, k=optimum.k_opt)
        sens = delay_sensitivities(stage)
        scale = sens.tau / stage.h
        assert sens.absolute["k"] * stage.k / sens.tau == pytest.approx(
            0.0, abs=1e-5)
        assert sens.absolute["h"] == pytest.approx(scale, rel=1e-4)

    def test_inductance_sensitivity_positive_when_underdamped(self,
                                                              stage_rlc):
        sens = delay_sensitivities(stage_rlc)
        assert sens.absolute["l"] > 0.0
        assert sens.relative["l"] > 0.0

    def test_relative_zero_for_zero_parameter(self, stage_rc):
        sens = delay_sensitivities(stage_rc)
        assert sens.relative["l"] == 0.0

    def test_driver_resistance_dominates_rc_stage(self, stage_rc):
        """On an RC-optimal stage the classic result: delay is controlled
        by the r_s/c and r/c_0 products, all with positive elasticity."""
        sens = delay_sensitivities(stage_rc)
        for p in ("r", "c", "r_s", "c_0"):
            assert sens.relative[p] > 0.0

    def test_dominant_helper(self, stage_rlc):
        sens = delay_sensitivities(stage_rlc)
        dominant = sens.dominant()
        assert abs(sens.relative[dominant]) == max(
            abs(v) for v in sens.relative.values())

    def test_threshold_validated(self, stage_rc):
        with pytest.raises(ParameterError):
            delay_sensitivities(stage_rc, 0.0)

    def test_scale_invariance_of_elasticities(self, node, rc_opt):
        """Elasticities are dimensionless: rescaling (c, h, k) along the
        invariance direction c->4c, h->h/2, k->2k preserves them for the
        line parameters."""
        line = node.line_with_inductance(1.0 * units.NH_PER_MM)
        stage = Stage(line=line, driver=node.driver,
                      h=rc_opt.h_opt, k=rc_opt.k_opt)
        mapped = Stage(line=LineParams(r=line.r, l=line.l, c=4.0 * line.c),
                       driver=node.driver, h=stage.h / 2.0, k=2.0 * stage.k)
        original = delay_sensitivities(stage)
        transformed = delay_sensitivities(mapped)
        assert transformed.tau == pytest.approx(original.tau, rel=1e-9)
        assert transformed.relative["l"] == pytest.approx(
            original.relative["l"], rel=1e-6)
        assert transformed.relative["r"] == pytest.approx(
            original.relative["r"], rel=1e-6)
