"""Unit tests for the repeater-insertion optimizer (paper Eqs. 7-8)."""

import pytest

from repro import (OptimizationError, OptimizerMethod, ParameterError,
                   optimize_repeater, rc_optimum, stage_delay_per_length,
                   units)
from repro.core.optimize import stationarity_residuals


class TestStationarityResiduals:
    @pytest.mark.parametrize("l_nh", [0.0, 1.0, 3.0])
    def test_vanish_at_direct_optimum(self, node, l_nh):
        line = node.line_with_inductance(l_nh * units.NH_PER_MM)
        optimum = optimize_repeater(line, node.driver,
                                    method=OptimizerMethod.DIRECT)
        g1, g2, tau = stationarity_residuals(line, node.driver,
                                             optimum.h_opt, optimum.k_opt,
                                             0.5)
        assert abs(g1) < 1e-5
        assert abs(g2) < 1e-5
        assert tau == pytest.approx(optimum.tau, rel=1e-6)

    def test_nonzero_away_from_optimum(self, node):
        line = node.line_with_inductance(1.0 * units.NH_PER_MM)
        optimum = optimize_repeater(line, node.driver)
        g1, g2, _ = stationarity_residuals(line, node.driver,
                                           optimum.h_opt * 1.2,
                                           optimum.k_opt * 1.2, 0.5)
        assert abs(g1) > 1e-4 or abs(g2) > 1e-4


class TestNewtonOptimizer:
    @pytest.mark.parametrize("l_nh", [0.0, 0.5, 2.0, 5.0])
    def test_agrees_with_direct(self, node, l_nh):
        line = node.line_with_inductance(l_nh * units.NH_PER_MM)
        newton = optimize_repeater(line, node.driver,
                                   method=OptimizerMethod.NEWTON)
        direct = optimize_repeater(line, node.driver,
                                   method=OptimizerMethod.DIRECT)
        assert newton.h_opt == pytest.approx(direct.h_opt, rel=1e-4)
        assert newton.k_opt == pytest.approx(direct.k_opt, rel=1e-4)
        assert newton.delay_per_length == pytest.approx(
            direct.delay_per_length, rel=1e-6)

    def test_converges_in_few_iterations(self, node):
        """Paper: < 6 Newton iterations; allow a small margin from the
        cold RC start."""
        line = node.line_with_inductance(1.0 * units.NH_PER_MM)
        result = optimize_repeater(line, node.driver,
                                   method=OptimizerMethod.NEWTON)
        assert result.method is OptimizerMethod.NEWTON
        assert result.iterations <= 8

    def test_warm_start_reduces_iterations(self, node):
        line = node.line_with_inductance(1.0 * units.NH_PER_MM)
        cold = optimize_repeater(line, node.driver,
                                 method=OptimizerMethod.NEWTON)
        warm = optimize_repeater(line, node.driver,
                                 method=OptimizerMethod.NEWTON,
                                 initial=(cold.h_opt, cold.k_opt))
        assert warm.iterations <= cold.iterations


class TestOptimumProperties:
    def test_is_a_local_minimum(self, node):
        line = node.line_with_inductance(1.0 * units.NH_PER_MM)
        optimum = optimize_repeater(line, node.driver)
        best = optimum.delay_per_length
        for dh, dk in ((1.03, 1.0), (0.97, 1.0), (1.0, 1.03), (1.0, 0.97)):
            perturbed = stage_delay_per_length(line, node.driver,
                                               optimum.h_opt * dh,
                                               optimum.k_opt * dk, 0.5)
            assert perturbed >= best * (1.0 - 1e-9)

    def test_zero_inductance_shrinks_h_below_rc(self, node):
        """Paper Fig. 5: h_optRLC < h_optRC at l = 0 (Pade vs Elmore)."""
        optimum = optimize_repeater(node.line, node.driver)
        reference = rc_optimum(node.line, node.driver)
        assert 0.9 < optimum.h_opt / reference.h_opt < 1.0
        assert 0.8 < optimum.k_opt / reference.k_opt < 1.0

    def test_h_grows_k_shrinks_with_inductance(self, node):
        """Paper Figs. 5-6 monotonic trends."""
        previous_h, previous_k = None, None
        for l_nh in (0.5, 1.5, 3.0, 5.0):
            line = node.line_with_inductance(l_nh * units.NH_PER_MM)
            optimum = optimize_repeater(line, node.driver)
            if previous_h is not None:
                assert optimum.h_opt > previous_h
                assert optimum.k_opt < previous_k
            previous_h, previous_k = optimum.h_opt, optimum.k_opt

    def test_works_for_other_thresholds(self, node):
        """The paper's method is valid for any f, unlike the baselines."""
        line = node.line_with_inductance(1.0 * units.NH_PER_MM)
        for f in (0.3, 0.5, 0.7, 0.9):
            optimum = optimize_repeater(line, node.driver, f)
            assert optimum.h_opt > 0.0
            assert optimum.k_opt > 0.0
        tau_90 = optimize_repeater(line, node.driver, 0.9).tau
        tau_50 = optimize_repeater(line, node.driver, 0.5).tau
        assert tau_90 > tau_50

    def test_delay_per_length_grows_with_inductance(self, node):
        """Paper Fig. 7: the optimized objective degrades with l."""
        values = []
        for l_nh in (0.0, 1.0, 3.0, 5.0):
            line = node.line_with_inductance(l_nh * units.NH_PER_MM)
            values.append(optimize_repeater(line, node.driver)
                          .delay_per_length)
        assert values == sorted(values)


class TestValidation:
    def test_rejects_bad_threshold(self, node):
        with pytest.raises(ParameterError):
            optimize_repeater(node.line, node.driver, 0.0)
        with pytest.raises(ParameterError):
            optimize_repeater(node.line, node.driver, 1.0)

    def test_rejects_bad_initial(self, node):
        with pytest.raises(ParameterError):
            optimize_repeater(node.line, node.driver, initial=(-1.0, 100.0))

    def test_newton_failure_reported(self, node):
        """A hopeless iteration budget raises OptimizationError."""
        line = node.line_with_inductance(1.0 * units.NH_PER_MM)
        with pytest.raises(OptimizationError):
            optimize_repeater(line, node.driver,
                              method=OptimizerMethod.NEWTON,
                              initial=(node.line.c, 1e6), max_iterations=2)
