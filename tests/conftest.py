"""Shared fixtures: technology nodes, representative stages, tolerances."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro import (NODE_100NM, NODE_250NM, DriverParams, LineParams, Stage,
                   rc_optimum, units)


@pytest.fixture
def repo_root():
    """The project root (parent of src/ and tests/), for self-scans."""
    return Path(__file__).resolve().parent.parent


@pytest.fixture(params=["250nm", "100nm"], ids=["250nm", "100nm"])
def node(request):
    """Both Table 1 technology nodes."""
    return NODE_250NM if request.param == "250nm" else NODE_100NM


@pytest.fixture
def line_rc(node):
    """The node's top-metal line with zero inductance."""
    return node.line


@pytest.fixture
def line_rlc(node):
    """The node's top-metal line with a mid-range inductance (1 nH/mm)."""
    return node.line_with_inductance(1.0 * units.NH_PER_MM)


@pytest.fixture
def rc_opt(node):
    """Closed-form RC optimum of the node."""
    return rc_optimum(node.line, node.driver)


@pytest.fixture
def stage_rc(node, rc_opt):
    """RC-optimally sized stage with zero line inductance."""
    return Stage(line=node.line, driver=node.driver,
                 h=rc_opt.h_opt, k=rc_opt.k_opt)


@pytest.fixture
def stage_rlc(node, line_rlc, rc_opt):
    """RC-optimally sized stage with 1 nH/mm line inductance (underdamped)."""
    return Stage(line=line_rlc, driver=node.driver,
                 h=rc_opt.h_opt, k=rc_opt.k_opt)


@pytest.fixture
def generic_line():
    """A simple synthetic line for unit tests not tied to Table 1."""
    return LineParams(r=4000.0, l=0.5e-6, c=150e-12)


@pytest.fixture
def generic_driver():
    """A simple synthetic driver for unit tests not tied to Table 1."""
    return DriverParams(r_s=10e3, c_p=5e-15, c_0=1.5e-15)
