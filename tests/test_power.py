"""Unit tests for the repeater power model and power-capped optimization."""

import pytest

from repro import optimize_repeater, units
from repro.analysis.power import (PowerReport, optimize_with_power_cap,
                                  power_report,
                                  switched_capacitance_per_length)
from repro.errors import OptimizationError, ParameterError


class TestSwitchedCapacitance:
    def test_formula(self, node, rc_opt):
        value = switched_capacitance_per_length(node.line, node.driver,
                                                rc_opt.h_opt, rc_opt.k_opt)
        expected = (node.line.c + (node.driver.c_0 + node.driver.c_p)
                    * rc_opt.k_opt / rc_opt.h_opt)
        assert value == pytest.approx(expected)
        assert value > node.line.c

    def test_validation(self, node):
        with pytest.raises(ParameterError):
            switched_capacitance_per_length(node.line, node.driver, 0.0, 10.0)


class TestPowerReport:
    def test_scaling_with_frequency_and_vdd(self, node, rc_opt):
        base = power_report(node.line, node.driver, rc_opt.h_opt,
                            rc_opt.k_opt, vdd=1.0, frequency=1e9)
        double_f = power_report(node.line, node.driver, rc_opt.h_opt,
                                rc_opt.k_opt, vdd=1.0, frequency=2e9)
        double_v = power_report(node.line, node.driver, rc_opt.h_opt,
                                rc_opt.k_opt, vdd=2.0, frequency=1e9)
        assert double_f.dynamic_power_per_length == pytest.approx(
            2.0 * base.dynamic_power_per_length)
        assert double_v.dynamic_power_per_length == pytest.approx(
            4.0 * base.dynamic_power_per_length)

    def test_repeater_fraction_bounds(self, node, rc_opt):
        report = power_report(node.line, node.driver, rc_opt.h_opt,
                              rc_opt.k_opt, vdd=node.vdd, frequency=1e9)
        assert 0.0 < report.repeater_fraction < 1.0

    def test_validation(self, node, rc_opt):
        with pytest.raises(ParameterError):
            power_report(node.line, node.driver, rc_opt.h_opt, rc_opt.k_opt,
                         vdd=0.0, frequency=1e9)
        with pytest.raises(ParameterError):
            power_report(node.line, node.driver, rc_opt.h_opt, rc_opt.k_opt,
                         vdd=1.0, frequency=1e9, activity=1.5)


class TestPowerCappedOptimization:
    def settings(self, node):
        return dict(vdd=node.vdd, frequency=2e9, activity=0.15)

    def unconstrained_power(self, node, line):
        optimum = optimize_repeater(line, node.driver)
        report = power_report(line, node.driver, optimum.h_opt,
                              optimum.k_opt, **self.settings(node))
        return optimum, report.dynamic_power_per_length

    def test_loose_budget_returns_unconstrained(self, node):
        line = node.line_with_inductance(1.0 * units.NH_PER_MM)
        optimum, power = self.unconstrained_power(node, line)
        result = optimize_with_power_cap(
            line, node.driver, power_budget_per_length=2.0 * power,
            **self.settings(node))
        assert not result.constraint_active
        assert result.h_opt == pytest.approx(optimum.h_opt)
        assert result.delay_penalty == pytest.approx(1.0)

    def test_tight_budget_meets_constraint(self, node):
        line = node.line_with_inductance(1.0 * units.NH_PER_MM)
        _, power = self.unconstrained_power(node, line)
        budget = 0.6 * power
        result = optimize_with_power_cap(
            line, node.driver, power_budget_per_length=budget,
            **self.settings(node))
        assert result.constraint_active
        assert result.power_per_length == pytest.approx(budget, rel=1e-6)
        assert result.delay_penalty > 1.0

    def test_tighter_budget_costs_more_delay(self, node):
        line = node.line_with_inductance(1.0 * units.NH_PER_MM)
        _, power = self.unconstrained_power(node, line)
        mild = optimize_with_power_cap(
            line, node.driver, power_budget_per_length=0.85 * power,
            **self.settings(node))
        harsh = optimize_with_power_cap(
            line, node.driver, power_budget_per_length=0.65 * power,
            **self.settings(node))
        assert harsh.delay_penalty > mild.delay_penalty > 1.0

    def test_budget_below_wire_power_rejected(self, node):
        line = node.line_with_inductance(1.0 * units.NH_PER_MM)
        settings = self.settings(node)
        wire_only = (settings["activity"] * settings["frequency"]
                     * settings["vdd"] ** 2 * line.c)
        with pytest.raises(OptimizationError):
            optimize_with_power_cap(line, node.driver,
                                    power_budget_per_length=0.9 * wire_only,
                                    **settings)

    def test_nonpositive_budget_rejected(self, node):
        with pytest.raises(ParameterError):
            optimize_with_power_cap(node.line, node.driver,
                                    power_budget_per_length=0.0,
                                    **self.settings(node))

    def test_constrained_optimum_is_boundary_optimal(self, node):
        """No sizing on the constraint boundary beats the returned one."""
        from repro import Stage, threshold_delay
        line = node.line_with_inductance(1.0 * units.NH_PER_MM)
        _, power = self.unconstrained_power(node, line)
        result = optimize_with_power_cap(
            line, node.driver, power_budget_per_length=0.6 * power,
            **self.settings(node))
        density = result.k_opt / result.h_opt
        for factor in (0.8, 1.25):
            h = result.h_opt * factor
            stage = Stage(line=line, driver=node.driver, h=h, k=density * h)
            other = threshold_delay(stage, polish_with_newton=False).tau / h
            assert other >= result.delay_per_length * (1.0 - 1e-6)
