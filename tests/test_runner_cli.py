"""End-to-end tests of the repro-experiments CLI."""

import os

import pytest

from repro.experiments.runner import main


class TestCli:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "table1" in output
        assert "fig11" in output
        assert "ext_bus" in output

    def test_run_single_experiment(self, capsys):
        assert main(["run", "fig2"]) == 0
        output = capsys.readouterr().out
        assert "fig2" in output
        assert "underdamped" in output

    def test_run_with_fast_override(self, capsys):
        assert main(["run", "fig5", "--fast"]) == 0
        output = capsys.readouterr().out
        assert "h ratio" in output

    def test_run_writes_report_file(self, tmp_path, capsys):
        out_file = tmp_path / "report.txt"
        assert main(["run", "fig2", "--out", str(out_file)]) == 0
        capsys.readouterr()
        content = out_file.read_text()
        assert "fig2" in content

    def test_out_overwrites_by_default(self, tmp_path, capsys):
        out_file = tmp_path / "report.txt"
        assert main(["run", "fig2", "--out", str(out_file)]) == 0
        assert main(["run", "fig2", "--out", str(out_file)]) == 0
        capsys.readouterr()
        assert out_file.read_text().count("== fig2:") == 1

    def test_out_appends_with_flag(self, tmp_path, capsys):
        out_file = tmp_path / "report.txt"
        assert main(["run", "fig2", "--out", str(out_file)]) == 0
        assert main(["run", "fig2", "--out", str(out_file),
                     "--append"]) == 0
        capsys.readouterr()
        assert out_file.read_text().count("== fig2:") == 2

    def test_run_with_worker_pool(self, capsys):
        assert main(["run", "fig2", "table1", "--fast", "--jobs", "2"]) == 0
        output = capsys.readouterr().out
        assert "== fig2:" in output
        assert "== table1:" in output
        assert output.index("fig2") < output.index("table1")
        assert "2 total, 2 ok, 0 failed (2 workers)" in output

    def test_run_with_cache_replays(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        args = ["run", "fig2", "--cache", "--cache-dir", str(cache_dir)]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main(args) == 0
        second = capsys.readouterr().out
        assert "[cached]" in second
        assert first.split("[")[0] == second.split("[")[0]

    def test_run_writes_csv(self, tmp_path, capsys):
        csv_dir = tmp_path / "csv"
        assert main(["run", "fig2", "table1", "--csv-dir",
                     str(csv_dir)]) == 0
        capsys.readouterr()
        assert sorted(os.listdir(csv_dir)) == ["fig2.csv", "table1.csv"]
        assert "regime" in (csv_dir / "fig2.csv").read_text()

    def test_unknown_id_exits(self):
        with pytest.raises(SystemExit):
            main(["run", "fig99"])

    def test_dedup_and_order_preserved(self, capsys):
        assert main(["run", "fig2", "fig2", "table1"]) == 0
        output = capsys.readouterr().out
        assert output.count("== fig2:") == 1
        assert output.index("fig2") < output.index("table1")
