"""End-to-end tests of the repro-experiments CLI."""

import os

import pytest

from repro.experiments.runner import main


class TestCli:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "table1" in output
        assert "fig11" in output
        assert "ext_bus" in output

    def test_run_single_experiment(self, capsys):
        assert main(["run", "fig2"]) == 0
        output = capsys.readouterr().out
        assert "fig2" in output
        assert "underdamped" in output

    def test_run_with_fast_override(self, capsys):
        assert main(["run", "fig5", "--fast"]) == 0
        output = capsys.readouterr().out
        assert "h ratio" in output

    def test_run_writes_report_file(self, tmp_path, capsys):
        out_file = tmp_path / "report.txt"
        assert main(["run", "fig2", "--out", str(out_file)]) == 0
        capsys.readouterr()
        content = out_file.read_text()
        assert "fig2" in content

    def test_run_writes_csv(self, tmp_path, capsys):
        csv_dir = tmp_path / "csv"
        assert main(["run", "fig2", "table1", "--csv-dir",
                     str(csv_dir)]) == 0
        capsys.readouterr()
        assert sorted(os.listdir(csv_dir)) == ["fig2.csv", "table1.csv"]
        assert "regime" in (csv_dir / "fig2.csv").read_text()

    def test_unknown_id_exits(self):
        with pytest.raises(SystemExit):
            main(["run", "fig99"])

    def test_dedup_and_order_preserved(self, capsys):
        assert main(["run", "fig2", "fig2", "table1"]) == 0
        output = capsys.readouterr().out
        assert output.count("== fig2:") == 1
        assert output.index("fig2") < output.index("table1")
