"""Unit tests for mutual inductance, coupled lines and crosstalk."""

import math

import pytest

from repro import LineParams, NODE_100NM, rc_optimum, units
from repro.analysis import Waveform, measure_crosstalk
from repro.circuits import (Circuit, GROUND, MutualInductance, MnaStructure,
                            add_coupled_pair, build_crosstalk_bench, simulate)
from repro.errors import NetlistError, ParameterError


def coupled_tanks(k, v_a=1.0, v_b=1.0, l=1e-9, c=1e-12):
    circuit = Circuit("coupled-lc")
    circuit.inductor("L1", "a", GROUND, l)
    circuit.capacitor("C1", "a", GROUND, c, initial_voltage=v_a)
    circuit.inductor("L2", "b", GROUND, l)
    circuit.capacitor("C2", "b", GROUND, c, initial_voltage=v_b)
    circuit.mutual("K1", "L1", "L2", k)
    return circuit


class TestMutualInductanceElement:
    def test_mutual_value(self):
        mutual = MutualInductance(name="K", inductor_a="L1",
                                  inductor_b="L2", coupling=0.5)
        assert mutual.mutual_inductance(1e-9, 4e-9) == pytest.approx(1e-9)

    @pytest.mark.parametrize("kwargs", [
        {"inductor_a": "", "inductor_b": "L2", "coupling": 0.5},
        {"inductor_a": "L1", "inductor_b": "L1", "coupling": 0.5},
        {"inductor_a": "L1", "inductor_b": "L2", "coupling": 1.0},
        {"inductor_a": "L1", "inductor_b": "L2", "coupling": -0.1},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ParameterError):
            MutualInductance(name="K", **kwargs)

    def test_unknown_inductor_rejected_at_compile(self):
        circuit = Circuit()
        circuit.inductor("L1", "a", GROUND, 1e-9)
        circuit.capacitor("C1", "a", GROUND, 1e-12)
        circuit.mutual("K1", "L1", "L_missing", 0.5)
        with pytest.raises(NetlistError):
            MnaStructure(circuit)

    def test_references_no_nodes(self):
        mutual = MutualInductance(name="K", inductor_a="L1",
                                  inductor_b="L2", coupling=0.5)
        assert mutual.nodes == ()


class TestCoupledModes:
    """Coupled identical LC tanks: mode frequencies 1/sqrt(L(1 +- k)C)."""

    @pytest.mark.parametrize("k", [0.2, 0.5, 0.8])
    def test_even_mode(self, k):
        l, c = 1e-9, 1e-12
        period = 2.0 * math.pi * math.sqrt(l * (1.0 + k) * c)
        circuit = coupled_tanks(k, 1.0, 1.0, l, c)
        result = simulate(circuit, 8.0 * period, period / 400.0,
                          initial_voltages={"a": 1.0, "b": 1.0})
        waveform = Waveform(result.time, result.voltage("a"))
        assert waveform.oscillation_period(0.0, skip=1) == pytest.approx(
            period, rel=1e-3)

    @pytest.mark.parametrize("k", [0.2, 0.5])
    def test_odd_mode(self, k):
        l, c = 1e-9, 1e-12
        period = 2.0 * math.pi * math.sqrt(l * (1.0 - k) * c)
        circuit = coupled_tanks(k, 1.0, -1.0, l, c)
        result = simulate(circuit, 8.0 * period, period / 400.0,
                          initial_voltages={"a": 1.0, "b": -1.0})
        waveform = Waveform(result.time, result.voltage("a"))
        assert waveform.oscillation_period(0.0, skip=1) == pytest.approx(
            period, rel=1e-3)

    def test_symmetry_preserved(self):
        """Symmetric excitation keeps both tanks identical forever."""
        circuit = coupled_tanks(0.5)
        period = 2.0 * math.pi * math.sqrt(1e-9 * 1.5 * 1e-12)
        result = simulate(circuit, 5.0 * period, period / 300.0,
                          initial_voltages={"a": 1.0, "b": 1.0})
        assert result.voltage("a") == pytest.approx(result.voltage("b"),
                                                    abs=1e-9)

    def test_zero_coupling_is_uncoupled(self):
        """k = 0: each tank rings at its own natural period."""
        l, c = 1e-9, 1e-12
        period = 2.0 * math.pi * math.sqrt(l * c)
        circuit = coupled_tanks(0.0, 1.0, 0.0, l, c)
        result = simulate(circuit, 8.0 * period, period / 400.0,
                          initial_voltages={"a": 1.0, "b": 0.0})
        waveform = Waveform(result.time, result.voltage("a"))
        assert waveform.oscillation_period(0.0, skip=1) == pytest.approx(
            period, rel=1e-3)
        assert Waveform(result.time, result.voltage("b")).peak() < 1e-6


LINE = LineParams(r=4400.0, l=1e-6, c=1.2e-10)


class TestCoupledPairBuilder:
    def test_structure(self):
        circuit = Circuit()
        circuit.voltage_source("V1", "ai", GROUND, 1.0)
        circuit.resistor("RV", "vi", GROUND, 10.0)
        pair = add_coupled_pair(circuit, "p", aggressor_in="ai",
                                aggressor_out="ao", victim_in="vi",
                                victim_out="vo", line=LINE, length=0.01,
                                segments=5,
                                coupling_capacitance_per_length=40e-12,
                                inductive_coupling=0.3)
        assert len(pair.coupling_capacitors) == 5
        assert len(pair.mutual_couplings) == 5
        total_cc = sum(circuit.element(n).capacitance
                       for n in pair.coupling_capacitors)
        assert total_cc == pytest.approx(40e-12 * 0.01)

    def test_no_coupling_elements_when_zero(self):
        circuit = Circuit()
        circuit.voltage_source("V1", "ai", GROUND, 1.0)
        circuit.resistor("RV", "vi", GROUND, 10.0)
        pair = add_coupled_pair(circuit, "p", aggressor_in="ai",
                                aggressor_out="ao", victim_in="vi",
                                victim_out="vo", line=LINE, length=0.01,
                                segments=4,
                                coupling_capacitance_per_length=0.0)
        assert pair.coupling_capacitors == []
        assert pair.mutual_couplings == []

    def test_inductive_coupling_requires_inductance(self):
        rc_line = LineParams(r=4400.0, l=0.0, c=1.2e-10)
        with pytest.raises(ParameterError):
            add_coupled_pair(Circuit(), "p", aggressor_in="ai",
                             aggressor_out="ao", victim_in="vi",
                             victim_out="vo", line=rc_line, length=0.01,
                             segments=4,
                             coupling_capacitance_per_length=1e-12,
                             inductive_coupling=0.3)


class TestCrosstalk:
    def run_bench(self, l_nh, km, cc=50e-12):
        node = NODE_100NM
        rc = rc_optimum(node.line, node.driver)
        line = node.line_with_inductance(l_nh * units.NH_PER_MM)
        drv = node.driver.sized(rc.k_opt)
        bench = build_crosstalk_bench(
            line, length=rc.h_opt, segments=10, r_driver=drv.r_series,
            c_load=drv.c_load, coupling_capacitance_per_length=cc,
            inductive_coupling=km, v_step=node.vdd)
        return measure_crosstalk(bench, t_end=1.2e-9, dt=2e-12)

    def test_rc_model_underestimates_noise(self):
        """Key claim from ref. [6]: ignoring inductance underestimates
        coupled noise substantially on global wires."""
        rc_noise = self.run_bench(0.0, 0.0).peak_noise
        rlc_noise = self.run_bench(1.5, 0.0).peak_noise
        assert rlc_noise > 2.0 * rc_noise

    def test_no_coupling_no_noise(self):
        report = self.run_bench(1.5, 0.0, cc=0.0)
        assert report.worst_noise < 1e-6

    def test_noise_grows_with_coupling_capacitance(self):
        small = self.run_bench(1.0, 0.0, cc=20e-12).peak_noise
        large = self.run_bench(1.0, 0.0, cc=80e-12).peak_noise
        assert large > small

    def test_threatens_logic_threshold(self):
        report = self.run_bench(1.5, 0.0)
        assert report.threatens_logic(0.3 * 1.2)
        assert not report.threatens_logic(10.0)
        with pytest.raises(ParameterError):
            report.threatens_logic(0.0)

    def test_report_fields_consistent(self):
        report = self.run_bench(1.0, 0.2)
        assert report.worst_noise == max(report.peak_noise,
                                         report.trough_noise)
        assert report.victim.time[0] <= report.peak_time \
            <= report.victim.time[-1]
