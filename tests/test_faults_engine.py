"""Engine fault paths: worker death, retry exhaustion, NaN screening.

These tests drive the :class:`~repro.engine.executor.BatchExecutor`
and :class:`~repro.engine.jobs.OptimizeJob` recovery paths through both
real failures (a worker process that dies mid-chunk) and injected ones
(the ``repro.faults`` plane), pinning the error *context* each path
promises — not just that something raised.
"""

import os
from dataclasses import dataclass
from typing import Any, ClassVar, Dict

import pytest

from repro import NODE_100NM, OptimizerMethod, units
from repro.engine.cache import ResultCache
from repro.engine.executor import BatchExecutor, _nonfinite_path
from repro.engine.jobs import DelayJob, OptimizeJob
from repro.errors import OptimizationError
from repro.faults import FaultPlan, FaultRule, hooks

NH = units.NH_PER_MM


@dataclass(frozen=True)
class _WorkerKillerJob:
    """A job whose ``run`` kills its worker process outright.

    ``os._exit`` skips every ``except`` — the fault-isolation envelope
    cannot catch it, so the pool itself breaks.  Module-level and frozen
    so the process-pool backend can pickle it.
    """

    kind: ClassVar[str] = "worker_killer"

    def canonical(self) -> Dict[str, Any]:
        return {"kind": self.kind}

    def run(self) -> Dict[str, Any]:
        os._exit(3)


def _delay_jobs(count):
    node = NODE_100NM
    return [DelayJob(line=node.line.with_inductance(l * NH),
                     driver=node.driver, h=0.01, k=150.0)
            for l in [0.5 * i for i in range(count)]]


class TestWorkerDeath:
    def test_real_worker_crash_mid_chunk_names_recovery(self):
        """A worker dying hard fails the batch with actionable context."""
        jobs = _delay_jobs(3) + [_WorkerKillerJob()]
        with pytest.raises(RuntimeError) as excinfo:
            BatchExecutor(jobs=2).run(jobs)
        message = str(excinfo.value)
        assert "4 jobs" in message
        assert "2 workers" in message
        assert "re-run with jobs=1" in message

    def test_injected_pool_break_takes_same_path(self):
        plan = FaultPlan(rules=[FaultRule(site="executor.pool.broken",
                                          mode="nth", n=1)])
        with hooks.active(plan):
            with pytest.raises(RuntimeError,
                               match="re-run with jobs=1"):
                BatchExecutor(jobs=2).run(_delay_jobs(4))


class TestRetryExhaustion:
    def _doomed_job(self):
        """Warm start and RC re-seed both fail (1-iteration Newton)."""
        return OptimizeJob(line=NODE_100NM.line_with_inductance(2.0 * NH),
                           driver=NODE_100NM.driver,
                           method=OptimizerMethod.NEWTON,
                           initial=(1e-4, 5.0), max_iterations=1,
                           retry_reseed=True)

    def test_exhausted_retry_names_both_attempts(self):
        with pytest.raises(OptimizationError) as excinfo:
            self._doomed_job().run()
        message = str(excinfo.value)
        assert "optimize retry exhausted" in message
        assert "warm start (0.0001, 5.0) failed" in message
        assert "RC re-seed" in message

    def test_executor_reports_exhausted_retry_with_context(self):
        outcome = BatchExecutor(jobs=1).run_one(self._doomed_job())
        assert not outcome.ok
        assert outcome.error_type == "OptimizationError"
        assert "optimize retry exhausted" in outcome.error

    def test_injected_warm_start_failure_recovers_via_reseed(self):
        from repro.core.elmore import rc_optimum

        line = NODE_100NM.line_with_inductance(1.0 * NH)
        seed = rc_optimum(line, NODE_100NM.driver)
        job = OptimizeJob(line=line, driver=NODE_100NM.driver,
                          initial=(seed.h_opt, seed.k_opt))
        plan = FaultPlan(rules=[FaultRule(site="optimize.warm_start",
                                          mode="nth", n=1)])
        with hooks.active(plan):
            result = job.run()
        assert result["retried"] is True
        # The recovered optimum matches the unfaulted run's numbers.
        clean = job.run()
        assert result["h_opt"] == pytest.approx(clean["h_opt"], rel=1e-9)
        assert result["k_opt"] == pytest.approx(clean["k_opt"], rel=1e-9)

    def test_reseed_counts_one_retry_not_two(self):
        """The re-seed path increments the retry counter exactly once."""
        from repro.core.elmore import rc_optimum

        line = NODE_100NM.line_with_inductance(1.0 * NH)
        seed = rc_optimum(line, NODE_100NM.driver)
        job = OptimizeJob(line=line, driver=NODE_100NM.driver,
                          initial=(seed.h_opt, seed.k_opt))
        plan = FaultPlan(rules=[FaultRule(site="optimize.warm_start",
                                          mode="nth", n=1)])
        with hooks.active(plan):
            report = BatchExecutor(jobs=1).run([job])
        assert report.metrics.retries == 1
        assert report.metrics.jobs_failed == 0


class TestNonFiniteScreen:
    def test_nonfinite_path_finds_nested_nan(self):
        assert _nonfinite_path({"a": {"b": [1.0, float("nan")]}}) \
            == "result.a.b[1]"
        assert _nonfinite_path({"a": float("inf")}) == "result.a"
        assert _nonfinite_path({"a": 1.0, "b": None}) is None

    def test_trace_subtree_is_exempt(self):
        payload = {"h_opt": 1.0,
                   "trace": {"residuals": [float("inf"), 1e-3]}}
        assert _nonfinite_path(payload) is None

    def test_nan_result_is_a_failure_not_a_cached_success(self, tmp_path):
        """A solver escape (injected NaN lane) must never be cached."""
        job = _delay_jobs(2)[1]
        plan = FaultPlan(rules=[
            FaultRule(site="kernels.threshold_delay.nan_lane",
                      mode="nth", n=1)])
        cache = ResultCache(tmp_path)
        with hooks.active(plan):
            outcome = BatchExecutor(jobs=1, cache=cache).run_one(job)
        assert not outcome.ok
        assert outcome.error_type == "DelaySolverError"
        assert "non-finite" in outcome.error
        assert cache.get(job) is None

    def test_cache_put_failure_does_not_fail_the_job(self, tmp_path):
        job = _delay_jobs(2)[1]
        plan = FaultPlan(rules=[FaultRule(site="cache.put.os_error",
                                          mode="nth", n=1)])
        cache = ResultCache(tmp_path)
        with hooks.active(plan):
            outcome = BatchExecutor(jobs=1, cache=cache).run_one(job)
        assert outcome.ok
        assert cache.tmp_files() == []   # failed writer cleaned up
        assert cache.get(job) is None    # nothing was promoted

    def test_hang_site_delays_but_completes(self):
        import time

        job = _delay_jobs(2)[1]
        plan = FaultPlan(rules=[FaultRule(site="executor.job.hang",
                                          mode="nth", n=1, delay=0.05)])
        start = time.perf_counter()
        with hooks.active(plan):
            outcome = BatchExecutor(jobs=1).run_one(job)
        assert outcome.ok
        assert time.perf_counter() - start >= 0.05
