"""Unit tests for the stage parameter containers."""

import math

import pytest

from repro import DriverParams, LineParams, ParameterError, Stage


class TestLineParams:
    def test_valid_construction(self):
        line = LineParams(r=4400.0, l=1e-6, c=2e-10)
        assert line.r == 4400.0
        assert line.l == 1e-6
        assert line.c == 2e-10

    def test_zero_inductance_allowed(self):
        line = LineParams(r=4400.0, l=0.0, c=2e-10)
        assert line.l == 0.0

    @pytest.mark.parametrize("kwargs", [
        {"r": 0.0, "l": 1e-6, "c": 2e-10},
        {"r": -1.0, "l": 1e-6, "c": 2e-10},
        {"r": 4400.0, "l": -1e-9, "c": 2e-10},
        {"r": 4400.0, "l": 1e-6, "c": 0.0},
        {"r": 4400.0, "l": 1e-6, "c": -1e-12},
    ])
    def test_invalid_construction_rejected(self, kwargs):
        with pytest.raises(ParameterError):
            LineParams(**kwargs)

    def test_with_inductance_replaces_only_l(self):
        line = LineParams(r=4400.0, l=0.0, c=2e-10)
        updated = line.with_inductance(2e-6)
        assert updated.l == 2e-6
        assert updated.r == line.r
        assert updated.c == line.c
        assert line.l == 0.0  # original untouched (frozen)

    def test_with_capacitance_replaces_only_c(self):
        line = LineParams(r=4400.0, l=1e-6, c=2e-10)
        updated = line.with_capacitance(3e-10)
        assert updated.c == 3e-10
        assert updated.r == line.r
        assert updated.l == line.l

    def test_characteristic_impedance(self):
        line = LineParams(r=4400.0, l=1e-6, c=1e-10)
        assert line.characteristic_impedance_lossless == pytest.approx(100.0)

    def test_time_of_flight(self):
        line = LineParams(r=4400.0, l=1e-6, c=1e-10)
        assert line.time_of_flight_per_length == pytest.approx(1e-8)

    def test_damping_factor_infinite_for_rc_line(self):
        line = LineParams(r=4400.0, l=0.0, c=1e-10)
        assert math.isinf(line.damping_factor(0.01))

    def test_damping_factor_formula(self):
        line = LineParams(r=4400.0, l=1e-6, c=1e-10)
        h = 0.01
        expected = 0.5 * 4400.0 * h * math.sqrt(1e-10 / 1e-6)
        assert line.damping_factor(h) == pytest.approx(expected)


class TestDriverParams:
    def test_sizing_law(self):
        driver = DriverParams(r_s=10e3, c_p=5e-15, c_0=2e-15)
        sized = driver.sized(100.0)
        assert sized.r_series == pytest.approx(100.0)
        assert sized.c_parasitic == pytest.approx(5e-13)
        assert sized.c_load == pytest.approx(2e-13)

    def test_sizing_requires_positive_k(self):
        driver = DriverParams(r_s=10e3, c_p=5e-15, c_0=2e-15)
        with pytest.raises(ParameterError):
            driver.sized(0.0)
        with pytest.raises(ParameterError):
            driver.sized(-2.0)

    def test_intrinsic_delay(self):
        driver = DriverParams(r_s=10e3, c_p=5e-15, c_0=2e-15)
        assert driver.intrinsic_delay == pytest.approx(10e3 * 7e-15)

    def test_zero_parasitic_allowed(self):
        driver = DriverParams(r_s=10e3, c_p=0.0, c_0=2e-15)
        assert driver.c_p == 0.0

    @pytest.mark.parametrize("kwargs", [
        {"r_s": 0.0, "c_p": 5e-15, "c_0": 2e-15},
        {"r_s": 10e3, "c_p": -1e-15, "c_0": 2e-15},
        {"r_s": 10e3, "c_p": 5e-15, "c_0": 0.0},
    ])
    def test_invalid_construction_rejected(self, kwargs):
        with pytest.raises(ParameterError):
            DriverParams(**kwargs)


class TestStage:
    def test_totals(self, generic_line, generic_driver):
        stage = Stage(line=generic_line, driver=generic_driver, h=0.01, k=200)
        assert stage.total_line_resistance == pytest.approx(40.0)
        assert stage.total_line_inductance == pytest.approx(0.5e-8)
        assert stage.total_line_capacitance == pytest.approx(1.5e-12)

    def test_sized_driver_consistent_with_driver(self, generic_line,
                                                 generic_driver):
        stage = Stage(line=generic_line, driver=generic_driver, h=0.01, k=50)
        assert stage.sized_driver == generic_driver.sized(50)

    def test_with_geometry(self, generic_line, generic_driver):
        stage = Stage(line=generic_line, driver=generic_driver, h=0.01, k=200)
        moved = stage.with_geometry(0.02, 100)
        assert moved.h == 0.02
        assert moved.k == 100
        assert moved.line is stage.line

    def test_with_inductance(self, generic_line, generic_driver):
        stage = Stage(line=generic_line, driver=generic_driver, h=0.01, k=200)
        updated = stage.with_inductance(2e-6)
        assert updated.line.l == 2e-6
        assert updated.h == stage.h

    @pytest.mark.parametrize("h,k", [(0.0, 100), (-0.01, 100),
                                     (0.01, 0.0), (0.01, -5)])
    def test_invalid_geometry_rejected(self, generic_line, generic_driver,
                                       h, k):
        with pytest.raises(ParameterError):
            Stage(line=generic_line, driver=generic_driver, h=h, k=k)
