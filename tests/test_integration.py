"""Integration tests spanning model, solver and simulator layers.

The heart of the reproduction is that three *independent* implementations
agree on the same stage:

1. the two-pole Padé model (moments -> poles -> closed-form response),
2. Talbot numerical inversion of the exact transfer function (Eq. 1),
3. the MNA transient simulator on a discretized ladder.

plus the nonlinear path: calibrated inverters in a ring oscillator showing
the paper's false-switching onset.
"""

import numpy as np
import pytest

from repro import (Stage, rc_optimum, threshold_delay, units)
from repro.analysis import Waveform, step_response_exact
from repro.circuits import build_linear_stage, simulate
from repro.verify import unit_tolerance


@pytest.fixture(scope="module")
def validation_node():
    from repro import NODE_100NM
    return NODE_100NM


class TestThreeWayCrossValidation:
    @pytest.mark.parametrize("l_nh", [0.0, 1.0, 3.0])
    def test_delay_agreement(self, validation_node, l_nh):
        node = validation_node
        rc_opt = rc_optimum(node.line, node.driver)
        line = node.line_with_inductance(l_nh * units.NH_PER_MM)
        stage = Stage(line=line, driver=node.driver,
                      h=rc_opt.h_opt, k=rc_opt.k_opt)

        tau_pade = threshold_delay(stage).tau

        t_grid = np.linspace(1e-13, 6.0 * tau_pade, 300)
        exact = Waveform(t_grid, step_response_exact(stage, t_grid))
        tau_exact = exact.first_crossing(0.5)

        bench = build_linear_stage(stage, segments=20)
        result = simulate(bench.circuit, 6.0 * tau_pade, tau_pade / 300.0)
        sim = Waveform(result.time, result.voltage(bench.output_node))
        tau_sim = sim.first_crossing(0.5)

        # Simulator vs exact: discretization error only.
        assert tau_sim == pytest.approx(
            tau_exact, rel=unit_tolerance("integration.sim_vs_exact.rel"))
        # Two-pole vs exact: the Pade model error the paper accepts.
        assert tau_pade == pytest.approx(
            tau_exact, rel=unit_tolerance("integration.pade_vs_exact.rel"))

    def test_overshoot_agreement(self, validation_node):
        node = validation_node
        rc_opt = rc_optimum(node.line, node.driver)
        line = node.line_with_inductance(1.0 * units.NH_PER_MM)
        stage = Stage(line=line, driver=node.driver,
                      h=rc_opt.h_opt, k=rc_opt.k_opt)
        tau = threshold_delay(stage).tau

        t_grid = np.linspace(1e-13, 8.0 * tau, 400)
        exact = Waveform(t_grid, step_response_exact(stage, t_grid))
        bench = build_linear_stage(stage, segments=20)
        result = simulate(bench.circuit, 8.0 * tau, tau / 300.0)
        sim = Waveform(result.time, result.voltage(bench.output_node))
        assert sim.overshoot(1.0) == pytest.approx(
            exact.overshoot(1.0),
            abs=unit_tolerance("integration.overshoot.abs"))

    def test_segment_convergence(self, validation_node):
        """Ladder delay converges toward the exact value as N grows."""
        node = validation_node
        rc_opt = rc_optimum(node.line, node.driver)
        line = node.line_with_inductance(1.0 * units.NH_PER_MM)
        stage = Stage(line=line, driver=node.driver,
                      h=rc_opt.h_opt, k=rc_opt.k_opt)
        tau = threshold_delay(stage).tau
        t_grid = np.linspace(1e-13, 6.0 * tau, 300)
        exact_tau = Waveform(t_grid, step_response_exact(stage, t_grid)) \
            .first_crossing(0.5)

        errors = []
        for segments in (2, 8, 24):
            bench = build_linear_stage(stage, segments=segments)
            result = simulate(bench.circuit, 6.0 * tau, tau / 300.0)
            sim_tau = Waveform(result.time,
                               result.voltage(bench.output_node)) \
                .first_crossing(0.5)
            errors.append(abs(sim_tau - exact_tau) / exact_tau)
        assert errors[2] < errors[0]
        assert errors[2] < 0.02


class TestRingOscillatorFailure:
    """The paper's Sec. 3.3.1 mechanism end to end (reduced cost)."""

    def test_period_collapses_above_onset_100nm(self):
        from repro.experiments.ring import run_ring
        low = run_ring("100nm", 1.4, segments=10, period_budget=9.0,
                       steps_per_period=450)
        high = run_ring("100nm", 2.6, segments=10, period_budget=9.0,
                        steps_per_period=450)
        period_low = low.period()
        period_high = high.period()
        assert period_high < 0.6 * period_low

    def test_250nm_immune_at_same_inductance(self):
        from repro.experiments.ring import run_ring
        low = run_ring("250nm", 0.5, segments=10, period_budget=9.0,
                       steps_per_period=450)
        high = run_ring("250nm", 2.6, segments=10, period_budget=9.0,
                        steps_per_period=450)
        assert high.period() > 0.8 * low.period()

    def test_input_rings_output_clean_below_onset(self):
        from repro.experiments.ring import run_ring
        run_data = run_ring("100nm", 1.6, segments=10, period_budget=9.0,
                            steps_per_period=450)
        vdd = run_data.oscillator.vdd
        vin = run_data.input_waveform
        vout = run_data.output_waveform
        assert vin.overshoot(vdd) > 0.3       # hard ringing at the input
        assert vout.overshoot(vdd) < 0.15     # output essentially clean

    def test_switch_inverter_shows_same_mechanism(self):
        """The failure onset is not a MOSFET-model artifact.  The switch
        inverter's stiff bidirectional output damps the line harder, so
        its collapse onset sits higher in l (~4 nH/mm vs ~2 for the
        calibrated MOSFET) — but the collapse itself is reproduced."""
        from repro.experiments.ring import run_ring
        low = run_ring("100nm", 2.0, segments=10, style="switch",
                       period_budget=9.0, steps_per_period=450)
        high = run_ring("100nm", 4.0, segments=10, style="switch",
                        period_budget=9.0, steps_per_period=450)
        assert high.period() < 0.7 * low.period()


class TestCurrentDensityPath:
    def test_density_reported_and_bounded(self):
        from repro.analysis.currents import current_density_report
        from repro.experiments.ring import run_ring
        from repro.tech import NODE_100NM
        run_data = run_ring("100nm", 1.0, segments=10, period_budget=9.0,
                            steps_per_period=450)
        ladder = run_data.oscillator.ladders[run_data.probe_stage]
        report = current_density_report(
            run_data.result, ladder, NODE_100NM.geometry.cross_section_area)
        # Sub-MA/cm^2 regime, comfortably inside reliability limits.
        assert 1e3 < report.rms_density_a_per_cm2 < 1e7
        assert report.peak_density > report.rms_density
