"""Unit tests for the threshold-crossing delay solver (paper Eq. 3)."""

import math

import numpy as np
import pytest

from repro import (Damping, DelaySolverError, ParameterError, StepResponse,
                   canonical_response, compute_moments, newton_delay,
                   stage_delay, threshold_delay)
from repro.verify import unit_tolerance


class TestThresholdDelay:
    def test_single_pole_limit_ln2(self):
        """A heavily overdamped system approaches tau = b1 ln 2 at f = 0.5."""
        # zeta = 5: poles separated by ~100x; dominant pole at
        # s1 ~= -wn/(2 zeta), so tau50 ~= ln(2) * 2 zeta / wn.
        wn = 1e9
        response = canonical_response(5.0, wn)
        tau = threshold_delay(response, 0.5).tau
        s1 = max(response.s1.real, response.s2.real)
        expected = math.log(2.0) / (-s1)
        assert tau == pytest.approx(
            expected, rel=unit_tolerance("delay.dominant_pole_limit.rel"))

    def test_critically_damped_closed_form(self):
        """(1 + x) e^{-x} = 0.5 at x = 1.67835; tau = x / wn."""
        wn = 1e9
        response = canonical_response(1.0, wn)
        tau = threshold_delay(response, 0.5).tau
        assert tau * wn == pytest.approx(
            1.67835, rel=unit_tolerance("delay.critical_closed_form.rel"))

    def test_solution_satisfies_delay_equation(self, stage_rlc):
        response = StepResponse.from_moments(compute_moments(stage_rlc))
        for f in (0.1, 0.5, 0.9):
            tau = threshold_delay(response, f).tau
            assert response(tau) == pytest.approx(
                f, abs=unit_tolerance("delay.on_threshold.abs"))

    def test_returns_first_crossing_for_underdamped(self, stage_rlc):
        """No earlier sample may exceed the threshold."""
        response = StepResponse.from_moments(compute_moments(stage_rlc))
        result = threshold_delay(response, 0.9)
        assert result.damping is Damping.UNDERDAMPED
        earlier = np.linspace(0.0, result.tau * 0.999, 2000)
        assert np.all(response(earlier) < 0.9)

    def test_monotonic_in_threshold(self, stage_rc, stage_rlc):
        for stage in (stage_rc, stage_rlc):
            taus = [stage_delay(stage, f).tau
                    for f in (0.1, 0.3, 0.5, 0.7, 0.9)]
            assert taus == sorted(taus)
            assert all(t > 0.0 for t in taus)

    def test_zero_threshold_is_zero_delay(self, stage_rc):
        assert threshold_delay(stage_rc, 0.0).tau == 0.0

    def test_high_threshold_underdamped_before_peak(self, stage_rlc):
        """f = 0.99 crossing must come before the first response peak."""
        response = StepResponse.from_moments(compute_moments(stage_rlc))
        tau = threshold_delay(response, 0.99).tau
        assert tau < response.peak_time()

    def test_invalid_threshold_rejected(self, stage_rc):
        with pytest.raises(ParameterError):
            threshold_delay(stage_rc, 1.0)
        with pytest.raises(ParameterError):
            threshold_delay(stage_rc, -0.1)

    def test_invalid_source_type_rejected(self):
        with pytest.raises(TypeError):
            threshold_delay("not a stage", 0.5)

    def test_accepts_stage_moments_and_response(self, stage_rlc):
        moments = compute_moments(stage_rlc)
        response = StepResponse.from_moments(moments)
        tau_stage = threshold_delay(stage_rlc, 0.5).tau
        tau_moments = threshold_delay(moments, 0.5).tau
        tau_response = threshold_delay(response, 0.5).tau
        rel = unit_tolerance("delay.source_equivalence.rel")
        assert tau_stage == pytest.approx(tau_moments, rel=rel)
        assert tau_stage == pytest.approx(tau_response, rel=rel)

    def test_brent_only_matches_polished(self, stage_rlc):
        polished = threshold_delay(stage_rlc, 0.5, polish_with_newton=True)
        brent = threshold_delay(stage_rlc, 0.5, polish_with_newton=False)
        assert brent.tau == pytest.approx(
            polished.tau, rel=unit_tolerance("delay.brent_vs_newton.rel"))
        assert brent.newton_iterations == 0


class TestNewtonDelay:
    def test_converges_quickly_from_good_guess(self, stage_rc):
        """The paper reports < 4 Newton iterations; verify from a bracketed
        starting point the count stays small."""
        response = StepResponse.from_moments(compute_moments(stage_rc))
        reference = threshold_delay(response, 0.5,
                                    polish_with_newton=False).tau
        tau, iterations = newton_delay(response, 0.5, reference * 1.2)
        assert tau == pytest.approx(
            reference, rel=unit_tolerance("delay.brent_vs_newton.rel"))
        assert iterations <= 6

    def test_raises_on_stationary_start(self, stage_rlc):
        """t = 0 is an exact stationary point of a two-pole response."""
        response = StepResponse.from_moments(compute_moments(stage_rlc))
        with pytest.raises(DelaySolverError):
            newton_delay(response, 0.5, 0.0)

    def test_iteration_limit_enforced(self, stage_rc):
        response = StepResponse.from_moments(compute_moments(stage_rc))
        with pytest.raises(DelaySolverError):
            newton_delay(response, 0.5, 1e6, max_iterations=2)


class TestDelayResult:
    def test_reports_damping_regime(self, stage_rc, stage_rlc):
        assert stage_delay(stage_rc).damping is Damping.OVERDAMPED
        assert stage_delay(stage_rlc).damping is Damping.UNDERDAMPED

    def test_threshold_recorded(self, stage_rc):
        assert stage_delay(stage_rc, 0.37).threshold == 0.37
