"""Unit tests for MNA assembly and the DC operating point."""

import pytest

from repro.circuits import (Circuit, GROUND, MnaStructure, Mosfet,
                            dc_operating_point)
from repro.errors import SimulationError


class TestStructure:
    def test_index_maps(self):
        circuit = Circuit()
        circuit.voltage_source("V1", "a", GROUND, 1.0)
        circuit.resistor("R1", "a", "b", 100.0)
        circuit.inductor("L1", "b", "c", 1e-9)
        circuit.capacitor("C1", "c", GROUND, 1e-12)
        structure = MnaStructure(circuit)
        assert structure.n_nodes == 3
        assert structure.n_branches == 2      # inductor + source
        assert structure.size == 5
        assert structure.node_index(GROUND) == -1
        assert structure.node_index("a") == 0
        assert structure.branch_row("L1") == 3
        assert structure.branch_row("V1") == 4

    def test_voltage_getter(self):
        import numpy as np
        circuit = Circuit()
        circuit.resistor("R1", "a", "b", 1.0)
        circuit.resistor("R2", "b", GROUND, 1.0)
        structure = MnaStructure(circuit)
        x = np.array([2.0, 1.0])
        voltages = structure.voltage_getter(x)
        assert voltages("a") == 2.0
        assert voltages("b") == 1.0
        assert voltages(GROUND) == 0.0


class TestDcOperatingPoint:
    def test_resistive_divider(self):
        circuit = Circuit()
        circuit.voltage_source("V1", "in", GROUND, 3.0)
        circuit.resistor("R1", "in", "mid", 1000.0)
        circuit.resistor("R2", "mid", GROUND, 2000.0)
        solution = dc_operating_point(circuit)
        assert solution["in"] == pytest.approx(3.0)
        assert solution["mid"] == pytest.approx(2.0, rel=1e-6)

    def test_inductor_is_dc_short(self):
        circuit = Circuit()
        circuit.voltage_source("V1", "in", GROUND, 1.0)
        circuit.resistor("R1", "in", "a", 100.0)
        circuit.inductor("L1", "a", "b", 1e-9)
        circuit.resistor("R2", "b", GROUND, 100.0)
        solution = dc_operating_point(circuit)
        assert solution["a"] == pytest.approx(solution["b"], abs=1e-9)
        assert solution["a"] == pytest.approx(0.5, rel=1e-6)

    def test_capacitor_is_dc_open(self):
        circuit = Circuit()
        circuit.voltage_source("V1", "in", GROUND, 1.0)
        circuit.resistor("R1", "in", "out", 1000.0)
        circuit.capacitor("C1", "out", GROUND, 1e-12)
        solution = dc_operating_point(circuit)
        # No DC path through the capacitor: out floats up to the source.
        assert solution["out"] == pytest.approx(1.0, rel=1e-3)

    def test_current_source_into_resistor(self):
        circuit = Circuit()
        circuit.current_source("I1", GROUND, "a", 1e-3)
        circuit.resistor("R1", "a", GROUND, 1000.0)
        solution = dc_operating_point(circuit)
        assert solution["a"] == pytest.approx(1.0, rel=1e-6)

    def test_cmos_inverter_transfer_points(self):
        """Gate low -> output at VDD; gate high -> output near ground."""
        vdd, vth, beta = 1.2, 0.3, 1e-4
        for vin, expected in ((0.0, vdd), (vdd, 0.0)):
            circuit = Circuit()
            circuit.voltage_source("VDD", "vdd", GROUND, vdd)
            circuit.voltage_source("VIN", "g", GROUND, vin)
            circuit.add(Mosfet(name="MN", drain="out", gate="g",
                               source=GROUND, polarity=1, vth=vth,
                               beta=beta))
            circuit.add(Mosfet(name="MP", drain="out", gate="g",
                               source="vdd", polarity=-1, vth=vth,
                               beta=beta))
            solution = dc_operating_point(circuit)
            assert solution["out"] == pytest.approx(expected, abs=0.05)

    def test_symmetric_inverter_trip_point(self):
        """Equal-beta inverter balances at VDD/2 (lam > 0 pins the output;
        with lam = 0 the output would be indeterminate across the shared
        saturation plateau)."""
        vdd, vth, beta = 1.2, 0.3, 1e-4
        circuit = Circuit()
        circuit.voltage_source("VDD", "vdd", GROUND, vdd)
        circuit.voltage_source("VIN", "g", GROUND, vdd / 2.0)
        circuit.add(Mosfet(name="MN", drain="out", gate="g", source=GROUND,
                           polarity=1, vth=vth, beta=beta, lam=0.05))
        circuit.add(Mosfet(name="MP", drain="out", gate="g", source="vdd",
                           polarity=-1, vth=vth, beta=beta, lam=0.05))
        solution = dc_operating_point(circuit)
        assert solution["out"] == pytest.approx(vdd / 2.0, abs=0.05)

    def test_ground_always_zero(self):
        circuit = Circuit()
        circuit.voltage_source("V1", "a", GROUND, 5.0)
        circuit.resistor("R1", "a", GROUND, 1.0)
        assert dc_operating_point(circuit)[GROUND] == 0.0
