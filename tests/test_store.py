"""Unit tests for the result-store plane: tiers, factory, single-flight.

The disk store's persistence contract is pinned by
``test_engine_cache.py`` (which exercises it through the compat name
``ResultCache``); this suite covers what the store *plane* adds — the
legacy flat-layout migration, the byte-budgeted memory tier, the tiered
composition, the ``make_store`` factory, and the ``SingleFlight``
coalescing protocol.
"""

import json
import threading

import pytest

from repro import NODE_100NM, units
from repro.engine.store import (DEFAULT_MEMORY_BUDGET, STORE_NAMES,
                                DiskStore, MemoryStore, SingleFlight,
                                TieredStore, describe_store, flight_key,
                                make_store)
from repro.engine.jobs import DelayJob

NH = units.NH_PER_MM


def _job(l_nh=1.0, h=0.01):
    return DelayJob(line=NODE_100NM.line_with_inductance(l_nh * NH),
                    driver=NODE_100NM.driver, h=h, k=150.0)


@pytest.fixture()
def job():
    return _job()


class TestFlightKey:
    def test_stable_and_spec_dependent(self, job):
        assert flight_key(job) == flight_key(_job())
        assert flight_key(job) != flight_key(_job(l_nh=2.0))

    def test_salt_independent(self, tmp_path, job):
        """Two differently-salted stores still coalesce the same spec."""
        a = DiskStore(tmp_path, salt="v1")
        b = DiskStore(tmp_path, salt="v2")
        assert a.key(job) != b.key(job)
        assert flight_key(job) == flight_key(job)


class TestLegacyMigration:
    def test_flat_record_reads_through(self, tmp_path, job):
        store = DiskStore(tmp_path)
        key = store.key(job)
        legacy = tmp_path / f"{key}.json"
        legacy.write_text(json.dumps(
            {"key": key, "salt": store.salt, "job": {}, "result": {"x": 1}}))
        assert store.get(job) == {"x": 1}

    def test_hit_migrates_into_shard(self, tmp_path, job):
        store = DiskStore(tmp_path)
        key = store.key(job)
        legacy = tmp_path / f"{key}.json"
        legacy.write_text(json.dumps(
            {"key": key, "salt": store.salt, "job": {}, "result": {"x": 1}}))
        store.get(job)
        assert not legacy.exists()
        assert store.path_for(key).exists()
        # Replays from the shard afterwards, bit-for-bit.
        assert store.get(job) == {"x": 1}

    def test_legacy_records_counted_and_cleared(self, tmp_path, job):
        store = DiskStore(tmp_path)
        key = store.key(job)
        (tmp_path / f"{key}.json").write_text(json.dumps(
            {"key": key, "salt": store.salt, "job": {}, "result": {}}))
        assert store.stats().entries == 1
        assert store.clear() == 1
        assert store.stats().entries == 0


class TestMemoryStore:
    def test_miss_then_hit_without_filesystem(self, job):
        store = MemoryStore()
        assert store.get(job) is None
        store.put(job, {"tau": 1.0})
        assert store.get(job) == {"tau": 1.0}
        assert (store.hits, store.misses) == (1, 1)

    def test_budget_evicts_least_recently_used(self):
        jobs = [_job(l_nh=0.5 * i) for i in range(4)]
        payload = {"tau": 1.0}
        size = len(json.dumps(payload, separators=(",", ":")).encode())
        store = MemoryStore(max_bytes=2 * size + 1)
        for j in jobs[:2]:
            store.put(j, payload)
        store.get(jobs[0])            # refresh 0; 1 is now LRU
        store.put(jobs[2], payload)   # evicts 1
        assert store.get(jobs[1]) is None
        assert store.get(jobs[0]) == payload
        assert store.get(jobs[2]) == payload

    def test_oversized_payload_not_retained(self, job):
        store = MemoryStore(max_bytes=4)
        store.put(job, {"tau": 1.0})
        assert store.get(job) is None
        assert store.stats().entries == 0

    def test_replacing_entry_does_not_double_count(self, job):
        store = MemoryStore()
        store.put(job, {"tau": 1.0})
        before = store.stats().total_bytes
        store.put(job, {"tau": 1.0})
        assert store.stats().total_bytes == before
        assert store.stats().entries == 1

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError, match="memory budget"):
            MemoryStore(max_bytes=-1)

    def test_stats_report_medium(self, job):
        store = MemoryStore()
        store.put(job, {"tau": 1.0})
        assert "in memory" in store.stats().format_summary()

    def test_close_clears(self, job):
        store = MemoryStore()
        store.put(job, {"tau": 1.0})
        store.close()
        assert store.stats().entries == 0


class TestTieredStore:
    def test_put_writes_through_both_tiers(self, tmp_path, job):
        store = TieredStore(root=tmp_path)
        key = store.put(job, {"tau": 1.0})
        assert store.path_for(key).exists()
        assert store.memory.get(job) == {"tau": 1.0}

    def test_memory_hit_never_touches_disk(self, tmp_path, job):
        store = TieredStore(root=tmp_path)
        key = store.put(job, {"tau": 1.0})
        store.path_for(key).unlink()  # disk record gone
        assert store.get(job) == {"tau": 1.0}  # memory still serves

    def test_disk_hit_promotes_into_memory(self, tmp_path, job):
        store = TieredStore(root=tmp_path)
        store.disk.put(job, {"tau": 1.0})
        assert store.memory.get(job) is None
        assert store.get(job) == {"tau": 1.0}
        assert store.memory.get(job) == {"tau": 1.0}

    def test_tiered_get_matches_disk_get(self, tmp_path, job):
        plain = DiskStore(tmp_path / "plain")
        tiered = TieredStore(root=tmp_path / "tiered")
        payload = {"tau": 1.25, "damping": "over"}
        plain.put(job, payload)
        tiered.put(job, payload)
        assert tiered.get(job) == plain.get(job)

    def test_tier_stats_and_clear(self, tmp_path, job):
        store = TieredStore(root=tmp_path)
        store.put(job, {"tau": 1.0})
        tiers = store.tier_stats()
        assert tiers["memory"].entries == 1
        assert tiers["disk"].entries == 1
        assert store.clear() == 1
        assert store.tier_stats()["memory"].entries == 0
        assert store.get(job) is None


class TestMakeStore:
    def test_names_resolve(self, tmp_path):
        assert STORE_NAMES == ("disk", "memory", "tiered")
        assert isinstance(make_store("disk", root=tmp_path), DiskStore)
        assert isinstance(make_store("memory"), MemoryStore)
        assert isinstance(make_store("tiered", root=tmp_path), TieredStore)

    def test_default_is_disk(self, tmp_path):
        store = make_store(None, root=tmp_path)
        assert isinstance(store, DiskStore)
        assert store.root == tmp_path

    def test_instance_passes_through(self):
        store = MemoryStore()
        assert make_store(store) is store

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown store"):
            make_store("redis")

    def test_max_bytes_reaches_memory_tier(self, tmp_path):
        store = make_store("tiered", root=tmp_path, max_bytes=123)
        assert store.memory.max_bytes == 123
        assert make_store("memory").max_bytes == DEFAULT_MEMORY_BUDGET

    def test_describe_store(self, tmp_path):
        assert describe_store(None) == "off"
        assert str(tmp_path) in describe_store(make_store(root=tmp_path))
        assert "memory" in describe_store(make_store("memory"))
        assert "tiered" in describe_store(
            make_store("tiered", root=tmp_path))


class TestSingleFlight:
    def test_first_acquire_leads(self):
        flights = SingleFlight()
        leader, flight = flights.acquire("k")
        assert leader
        follower, same = flights.acquire("k")
        assert not follower
        assert same is flight

    def test_publish_fans_out_and_clears_table(self):
        flights = SingleFlight()
        _, flight = flights.acquire("k")
        _, joined = flights.acquire("k")
        flights.publish(flight, {"x": 1})
        assert joined.wait(timeout=1.0) == ("ok", {"x": 1})
        # The flight is gone: a later acquire starts fresh work.
        leader, _ = flights.acquire("k")
        assert leader

    def test_publish_error_rejects_followers(self):
        flights = SingleFlight()
        _, flight = flights.acquire("k")
        _, joined = flights.acquire("k")
        exc = RuntimeError("boom")
        flights.publish_error(flight, exc)
        assert joined.wait(timeout=1.0) == ("error", exc)

    def test_do_coalesces_concurrent_callers(self):
        flights = SingleFlight()
        calls = []
        started = threading.Event()
        release = threading.Event()

        def slow():
            calls.append(1)
            started.set()
            release.wait(timeout=5.0)
            return {"x": 42}

        results = []
        leader = threading.Thread(
            target=lambda: results.append(flights.do("k", slow)))
        leader.start()
        started.wait(timeout=5.0)
        followers = [threading.Thread(
            target=lambda: results.append(flights.do("k", slow)))
            for _ in range(4)]
        for thread in followers:
            thread.start()
        while flights.stats()["followers"] < 4:
            pass  # all four must be registered before the leader lands
        release.set()
        for thread in [leader] + followers:
            thread.join(timeout=10.0)
        assert len(calls) == 1
        assert results == [{"x": 42}] * 5
        assert all(r is results[0] for r in results)

    def test_do_propagates_leader_exception(self):
        flights = SingleFlight()

        def boom():
            raise ValueError("nope")

        with pytest.raises(ValueError, match="nope"):
            flights.do("k", boom)
        # The failed flight is cleared; the key is retryable.
        assert flights.do("k", lambda: 7) == 7

    def test_stats_counts(self):
        flights = SingleFlight()
        _, flight = flights.acquire("k")
        flights.acquire("k")
        stats = flights.stats()
        assert stats == {"leads": 1, "followers": 1, "in_flight": 1}
        flights.publish(flight, None)
        assert flights.stats()["in_flight"] == 0
