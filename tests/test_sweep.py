"""Unit tests for the inductance sweep driving Figs. 4-8."""

import numpy as np
import pytest

from repro import sweep_inductance, units


@pytest.fixture(scope="module")
def sweep_100nm():
    from repro import NODE_100NM
    grid = np.array([0.0, 0.5, 1.0, 2.0, 4.0]) * units.NH_PER_MM
    return sweep_inductance(NODE_100NM.line, NODE_100NM.driver, grid)


class TestSweepStructure:
    def test_array_shapes(self, sweep_100nm):
        n = sweep_100nm.l_values.size
        for attribute in ("h_opt", "k_opt", "tau", "delay_per_length",
                          "l_crit", "rc_sized_delay_per_length"):
            assert getattr(sweep_100nm, attribute).shape == (n,)

    def test_rejects_empty_grid(self):
        from repro import NODE_100NM
        with pytest.raises(ValueError):
            sweep_inductance(NODE_100NM.line, NODE_100NM.driver, [])

    def test_threshold_recorded(self, sweep_100nm):
        assert sweep_100nm.threshold == 0.5


class TestSweepPhysics:
    def test_h_ratio_monotone_increasing(self, sweep_100nm):
        assert np.all(np.diff(sweep_100nm.h_ratio) > 0.0)

    def test_k_ratio_monotone_decreasing(self, sweep_100nm):
        assert np.all(np.diff(sweep_100nm.k_ratio) < 0.0)

    def test_delay_ratio_starts_at_one(self, sweep_100nm):
        assert sweep_100nm.delay_ratio_vs_rc[0] == pytest.approx(1.0)
        assert np.all(np.diff(sweep_100nm.delay_ratio_vs_rc) > 0.0)

    def test_mistuning_penalty_at_least_one(self, sweep_100nm):
        """The RC-sized stage can never beat the RLC optimum."""
        assert np.all(sweep_100nm.mistuning_penalty >= 1.0 - 1e-9)

    def test_damping_margin_crosses_one(self, sweep_100nm):
        """Low-l optima are overdamped, high-l optima underdamped."""
        margin = sweep_100nm.damping_margin
        assert margin[0] < 1.0      # l = 0
        assert margin[-1] > 1.0     # l = 4 nH/mm

    def test_warm_start_consistency_with_single_solves(self, sweep_100nm):
        """Sweep results must match independent single optimizations."""
        from repro import NODE_100NM, optimize_repeater
        index = 2  # l = 1 nH/mm
        line = NODE_100NM.line_with_inductance(
            float(sweep_100nm.l_values[index]))
        single = optimize_repeater(line, NODE_100NM.driver)
        assert sweep_100nm.h_opt[index] == pytest.approx(single.h_opt,
                                                         rel=1e-5)
        assert sweep_100nm.k_opt[index] == pytest.approx(single.k_opt,
                                                         rel=1e-5)

    def test_rc_reference_matches_closed_form(self, sweep_100nm):
        from repro import NODE_100NM, rc_optimum
        reference = rc_optimum(NODE_100NM.line, NODE_100NM.driver)
        assert sweep_100nm.rc_reference.h_opt == reference.h_opt
        assert sweep_100nm.rc_reference.k_opt == reference.k_opt


class TestFailureRecovery:
    def test_warm_start_failure_reseeds_from_rc_optimum(self, monkeypatch):
        """A failing warm start must fall back to the RC-optimum seed.

        The second sweep point's warm start (the first point's optimum) is
        poisoned; the sweep must still complete by re-seeding that point
        from the closed-form RC optimum, matching an unpoisoned sweep.
        """
        from repro import NODE_100NM, OptimizationError, rc_optimum
        from repro.engine import jobs as jobs_module

        rc_ref = rc_optimum(NODE_100NM.line, NODE_100NM.driver)
        rc_seed = (rc_ref.h_opt, rc_ref.k_opt)
        grid = np.array([0.0, 1.0]) * units.NH_PER_MM
        real_optimize = jobs_module.optimize_repeater
        seen = []

        def flaky(line, driver, f=0.5, *, initial=None, **kwargs):
            seen.append(initial)
            if line.l > 0.0 and initial != rc_seed:
                raise OptimizationError("poisoned warm start")
            return real_optimize(line, driver, f, initial=initial, **kwargs)

        monkeypatch.setattr(jobs_module, "optimize_repeater", flaky)
        sweep = sweep_inductance(NODE_100NM.line, NODE_100NM.driver, grid)
        # Point 1 was tried with the warm start, then re-seeded.
        assert seen[1] != rc_seed
        assert seen[2] == rc_seed
        reference = sweep_inductance(NODE_100NM.line, NODE_100NM.driver,
                                     grid)
        assert sweep.h_opt[1] == pytest.approx(reference.h_opt[1],
                                               rel=1e-5)

    def test_unrecoverable_failure_propagates(self, monkeypatch):
        from repro import NODE_100NM, OptimizationError
        from repro.engine import jobs as jobs_module

        def always_fails(*args, **kwargs):
            raise OptimizationError("hopeless")

        monkeypatch.setattr(jobs_module, "optimize_repeater", always_fails)
        grid = np.array([0.0, 1.0]) * units.NH_PER_MM
        with pytest.raises(OptimizationError, match="sweep point 0"):
            sweep_inductance(NODE_100NM.line, NODE_100NM.driver, grid)
