"""Unit tests for the inductance sweep driving Figs. 4-8."""

import numpy as np
import pytest

from repro import sweep_inductance, units


@pytest.fixture(scope="module")
def sweep_100nm():
    from repro import NODE_100NM
    grid = np.array([0.0, 0.5, 1.0, 2.0, 4.0]) * units.NH_PER_MM
    return sweep_inductance(NODE_100NM.line, NODE_100NM.driver, grid)


class TestSweepStructure:
    def test_array_shapes(self, sweep_100nm):
        n = sweep_100nm.l_values.size
        for attribute in ("h_opt", "k_opt", "tau", "delay_per_length",
                          "l_crit", "rc_sized_delay_per_length"):
            assert getattr(sweep_100nm, attribute).shape == (n,)

    def test_rejects_empty_grid(self):
        from repro import NODE_100NM
        with pytest.raises(ValueError):
            sweep_inductance(NODE_100NM.line, NODE_100NM.driver, [])

    def test_threshold_recorded(self, sweep_100nm):
        assert sweep_100nm.threshold == 0.5


class TestSweepPhysics:
    def test_h_ratio_monotone_increasing(self, sweep_100nm):
        assert np.all(np.diff(sweep_100nm.h_ratio) > 0.0)

    def test_k_ratio_monotone_decreasing(self, sweep_100nm):
        assert np.all(np.diff(sweep_100nm.k_ratio) < 0.0)

    def test_delay_ratio_starts_at_one(self, sweep_100nm):
        assert sweep_100nm.delay_ratio_vs_rc[0] == pytest.approx(1.0)
        assert np.all(np.diff(sweep_100nm.delay_ratio_vs_rc) > 0.0)

    def test_mistuning_penalty_at_least_one(self, sweep_100nm):
        """The RC-sized stage can never beat the RLC optimum."""
        assert np.all(sweep_100nm.mistuning_penalty >= 1.0 - 1e-9)

    def test_damping_margin_crosses_one(self, sweep_100nm):
        """Low-l optima are overdamped, high-l optima underdamped."""
        margin = sweep_100nm.damping_margin
        assert margin[0] < 1.0      # l = 0
        assert margin[-1] > 1.0     # l = 4 nH/mm

    def test_warm_start_consistency_with_single_solves(self, sweep_100nm):
        """Sweep results must match independent single optimizations."""
        from repro import NODE_100NM, optimize_repeater
        index = 2  # l = 1 nH/mm
        line = NODE_100NM.line_with_inductance(
            float(sweep_100nm.l_values[index]))
        single = optimize_repeater(line, NODE_100NM.driver)
        assert sweep_100nm.h_opt[index] == pytest.approx(single.h_opt,
                                                         rel=1e-5)
        assert sweep_100nm.k_opt[index] == pytest.approx(single.k_opt,
                                                         rel=1e-5)

    def test_rc_reference_matches_closed_form(self, sweep_100nm):
        from repro import NODE_100NM, rc_optimum
        reference = rc_optimum(NODE_100NM.line, NODE_100NM.driver)
        assert sweep_100nm.rc_reference.h_opt == reference.h_opt
        assert sweep_100nm.rc_reference.k_opt == reference.k_opt
