"""Batch-executor single-flight dedup: duplicate specs compute once.

A manifest that lists the same configuration N times used to evaluate it
N times.  With single-flight under the executor, the duplicates collapse
onto one leader lane per unique spec: the batch still reports N outcomes
(each duplicate carries the leader's payload bitwise), the metrics count
the fan-out, and the report stays bitwise identical to the pre-dedup
output at every ``--jobs`` value.
"""

import json
import threading
import time
from dataclasses import dataclass, field
from typing import Any, ClassVar, Dict

import pytest

from repro import NODE_100NM, units
from repro.engine.cache import ResultCache
from repro.engine.executor import BatchExecutor
from repro.engine.jobs import DelayJob, canonical_json
from repro.engine.store import SingleFlight, flight_key

NH = units.NH_PER_MM

#: In-process evaluation counter keyed by spec tag (serial backend runs
#: jobs on the calling process, so the counter observes every run).
_RUNS: Dict[str, int] = {}
_RUNS_LOCK = threading.Lock()


@dataclass(frozen=True)
class CountingJob:
    """A job that counts its own evaluations (serial backend only)."""

    tag: str
    kind: ClassVar[str] = "counting"

    def canonical(self) -> Dict[str, Any]:
        return {"kind": self.kind, "tag": self.tag}

    def run(self) -> Dict[str, Any]:
        with _RUNS_LOCK:
            _RUNS[self.tag] = _RUNS.get(self.tag, 0) + 1
        return {"tag": self.tag, "value": 42.0}


def delay_job(l_nh=1.0):
    return DelayJob(line=NODE_100NM.line_with_inductance(l_nh * NH),
                    driver=NODE_100NM.driver, h=0.01, k=150.0)


@pytest.fixture(autouse=True)
def _reset_counter():
    _RUNS.clear()


class TestWithinBatchDedup:
    def test_duplicate_specs_compute_once(self):
        jobs = [CountingJob("a"), CountingJob("b"), CountingJob("a"),
                CountingJob("a"), CountingJob("b")]
        report = BatchExecutor(jobs=1).run(jobs)
        assert _RUNS == {"a": 1, "b": 1}
        assert len(report.outcomes) == len(jobs)
        for job, outcome in zip(jobs, report.outcomes):
            assert outcome.ok
            assert outcome.result == {"tag": job.tag, "value": 42.0}

    def test_duplicates_receive_identical_payloads(self):
        jobs = [CountingJob("a")] * 3
        report = BatchExecutor(jobs=1).run(jobs)
        first = report.outcomes[0].result
        assert all(outcome.result is first for outcome in report.outcomes)

    def test_metrics_count_the_fanout(self):
        jobs = [CountingJob("a"), CountingJob("a"), CountingJob("b")]
        report = BatchExecutor(jobs=1).run(jobs)
        assert report.metrics.deduplicated == 1
        assert "1 deduplicated" in report.metrics.format_summary()

    def test_no_duplicates_no_dedup_line(self):
        report = BatchExecutor(jobs=1).run([CountingJob("a"),
                                            CountingJob("b")])
        assert report.metrics.deduplicated == 0
        assert "deduplicated" not in report.metrics.format_summary()

    def test_deduped_lane_reports_zero_wall_time(self):
        report = BatchExecutor(jobs=1).run([CountingJob("a")] * 2)
        leader, follower = report.outcomes
        assert not leader.deduped
        assert follower.deduped
        assert follower.wall_time == 0.0

    def test_duplicate_failures_fan_out_too(self):
        @dataclass(frozen=True)
        class FailingJob:
            kind: ClassVar[str] = "counting_fail"

            def canonical(self):
                return {"kind": self.kind}

            def run(self):
                with _RUNS_LOCK:
                    _RUNS["fail"] = _RUNS.get("fail", 0) + 1
                raise ValueError("doomed spec")

        report = BatchExecutor(jobs=1).run([FailingJob()] * 3)
        assert _RUNS == {"fail": 1}
        for outcome in report.outcomes:
            assert not outcome.ok
            assert outcome.error_type == "ValueError"
            assert "doomed spec" in outcome.error

    def test_deduped_lanes_do_not_rewrite_the_cache(self, tmp_path):
        """One put per unique spec: the leader writes, followers skip."""
        cache = ResultCache(tmp_path)
        job = delay_job()
        report = BatchExecutor(jobs=1, cache=cache).run([job] * 4)
        assert all(outcome.ok for outcome in report.outcomes)
        assert report.metrics.deduplicated == 3
        assert cache.stats().entries == 1
        assert cache.get(job) == report.outcomes[0].result


class TestBitwiseAcrossJobs:
    def test_duplicate_manifest_identical_at_any_jobs_value(self, tmp_path):
        """The report payload with duplicates is bitwise identical for
        jobs=1 and jobs=2 — dedup happens above the backend seam."""
        jobs = [delay_job(0.5), delay_job(1.0), delay_job(0.5),
                delay_job(1.5), delay_job(1.0)]
        serial = BatchExecutor(jobs=1).run(jobs)
        with BatchExecutor(jobs=2, backend="thread") as executor:
            threaded = executor.run(jobs)
        payload_serial = {"results": [outcome.result
                                      for outcome in serial.outcomes]}
        payload_threaded = {"results": [outcome.result
                                        for outcome in threaded.outcomes]}
        assert canonical_json(payload_serial) \
            == canonical_json(payload_threaded)
        assert serial.metrics.deduplicated == 2
        assert threaded.metrics.deduplicated == 2

    def test_dedup_matches_undeduplicated_solo_runs(self):
        jobs = [delay_job(0.5), delay_job(0.5), delay_job(1.0)]
        report = BatchExecutor(jobs=1).run(jobs)
        for job, outcome in zip(jobs, report.outcomes):
            assert canonical_json(outcome.result) \
                == canonical_json(job.run())


class TestCrossExecutorFlights:
    def test_shared_flight_table_collapses_across_executors(self):
        """An executor whose job is already in flight elsewhere waits
        for that leader's envelope instead of evaluating."""
        flights = SingleFlight()
        job = CountingJob("shared")
        leader, flight = flights.acquire(flight_key(job))
        assert leader

        executor = BatchExecutor(jobs=1, flights=flights)
        holder = {}
        thread = threading.Thread(
            target=lambda: holder.update(report=executor.run([job])))
        thread.start()
        deadline = time.monotonic() + 10.0
        while flights.stats()["followers"] < 1:
            assert time.monotonic() < deadline, "executor never joined"
            time.sleep(0.001)
        flights.publish(flight, {"ok": True,
                                 "result": {"tag": "shared",
                                            "value": 7.0},
                                 "wall_time": 0.5})
        thread.join(timeout=10.0)
        assert not thread.is_alive()

        outcome = holder["report"].outcomes[0]
        assert outcome.ok
        assert outcome.deduped
        assert outcome.result == {"tag": "shared", "value": 7.0}
        assert _RUNS == {}              # this executor never evaluated
        assert holder["report"].metrics.deduplicated == 1

    def test_leader_error_rejects_cross_executor_follower(self):
        flights = SingleFlight()
        job = CountingJob("shared")
        leader, flight = flights.acquire(flight_key(job))
        assert leader

        executor = BatchExecutor(jobs=1, flights=flights)
        holder = {}
        thread = threading.Thread(
            target=lambda: holder.update(report=executor.run([job])))
        thread.start()
        deadline = time.monotonic() + 10.0
        while flights.stats()["followers"] < 1:
            assert time.monotonic() < deadline, "executor never joined"
            time.sleep(0.001)
        flights.publish_error(flight, RuntimeError("leader died"))
        thread.join(timeout=10.0)
        assert not thread.is_alive()

        outcome = holder["report"].outcomes[0]
        assert not outcome.ok
        assert outcome.error_type == "RuntimeError"
        assert "leader died" in outcome.error
        assert _RUNS == {}


class TestRunPayloadShape:
    def test_report_payload_repeats_duplicates(self):
        """``--out`` JSON keeps one row per manifest entry."""
        jobs = [CountingJob("a"), CountingJob("a")]
        report = BatchExecutor(jobs=1).run(jobs)
        payload = report.to_payload()
        assert len(payload) == 2
        text = json.dumps(payload, sort_keys=True)
        assert text.count('"tag": "a"') >= 2
