"""Tests for the exhaustive bus pattern search."""

import pytest

from repro import NODE_100NM, rc_optimum, units
from repro.circuits.bus import worst_case_pattern
from repro.errors import ParameterError
from repro.extraction import sakurai_coupling, wire_from_tech


@pytest.fixture(scope="module")
def search_results():
    node = NODE_100NM
    rc = rc_optimum(node.line, node.driver)
    wire = wire_from_tech(node.geometry)
    drv = node.driver.sized(rc.k_opt)
    coupling_c = sakurai_coupling(wire, node.epsilon_r)

    def run(km, l_nh):
        line = node.line_with_inductance(l_nh * units.NH_PER_MM)
        return worst_case_pattern(
            line, n_lines=3, length=rc.h_opt, segments=8,
            r_driver=drv.r_series, c_load=drv.c_load,
            coupling_capacitance_per_length=coupling_c, vdd=node.vdd,
            inductive_coupling=km, t_end=2e-9, dt=2.5e-12,
            neighbour_patterns=("up", "down", "low"))

    return {"capacitive": run(0.0, 1.0), "inductive": run(0.5, 1.0)}


class TestPatternSearch:
    def test_exhaustive_coverage(self, search_results):
        # 3 patterns on 2 neighbour slots -> 9 combinations.
        assert len(search_results["capacitive"].delays) == 9

    def test_capacitive_worst_is_antiphase(self, search_results):
        """With k = 0, the slowest victim has both neighbours switching
        against it ('down' while the victim goes 'up')."""
        result = search_results["capacitive"]
        assert result.worst_pattern == ("down", "down")
        assert result.best_pattern == ("up", "up")

    def test_inductive_worst_is_inphase(self, search_results):
        """With strong mutual coupling the worst case inverts."""
        result = search_results["inductive"]
        assert result.worst_pattern == ("up", "up")
        assert result.best_pattern == ("down", "down")

    def test_spread_meaningful(self, search_results):
        for result in search_results.values():
            assert result.spread > 1.2
            assert result.worst_delay > result.best_delay > 0.0

    def test_victim_pattern_validated(self):
        node = NODE_100NM
        with pytest.raises(ParameterError):
            worst_case_pattern(
                node.line_with_inductance(1e-6), n_lines=3, length=0.01,
                segments=4, r_driver=100.0, c_load=1e-15,
                coupling_capacitance_per_length=1e-12, vdd=1.2,
                t_end=1e-9, dt=1e-11, victim_pattern="low")
