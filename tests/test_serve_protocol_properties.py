"""Property tests for the serve wire protocol and HTTP framing.

Two layers, one contract — a malformed request can never hang a
connection or escape as a traceback:

* ``parse_request`` properties (Hypothesis): every valid job document
  round-trips losslessly; any JSON document either parses or raises
  :class:`BadRequestError`; non-finite numbers anywhere in a request
  are rejected before they can reach a kernel batch or the cache.
* socket-level framing: truncated bodies (Content-Length promised,
  bytes withheld) get a structured 400 via the read timeout instead of
  pinning the connection; oversized bodies get 413; garbage request
  lines get 400; NaN tokens in the body get 400 — and after each, the
  server still serves the next connection.
"""

import json
import socket

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.engine.jobs import canonical_json, job_to_dict
from repro.serve.protocol import BadRequestError, parse_request
from repro.serve.server import ServerThread
from repro.serve.service import ReproService

from .strategies import drivers, lines

# ----------------------------------------------------------------------
# Hypothesis strategies.
# ----------------------------------------------------------------------
delay_documents = st.builds(
    lambda line, driver, h, k, f: {
        "kind": "delay",
        "line": {"r": line.r, "l": line.l, "c": line.c},
        "driver": {"r_s": driver.r_s, "c_p": driver.c_p,
                   "c_0": driver.c_0},
        "h": h, "k": k, "f": f},
    line=lines, driver=drivers,
    h=st.floats(min_value=1e-4, max_value=0.05),
    k=st.floats(min_value=1.0, max_value=5000.0),
    f=st.floats(min_value=0.1, max_value=0.9))

json_values = st.recursive(
    st.none() | st.booleans()
    | st.integers(min_value=-10**6, max_value=10**6)
    | st.floats(allow_nan=True, allow_infinity=True) | st.text(),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=12), children, max_size=4),
    max_leaves=12)


class TestParseRequestProperties:
    @given(document=delay_documents)
    @settings(max_examples=60, deadline=None)
    def test_valid_document_round_trips(self, document):
        request = parse_request(document)
        rebuilt = parse_request(job_to_dict(request.job))
        assert canonical_json(job_to_dict(request.job)) \
            == canonical_json(job_to_dict(rebuilt.job))
        assert request.timeout is None
        assert request.no_cache is False

    @given(document=delay_documents,
           field=st.sampled_from(["h", "k", "f"]),
           bad=st.sampled_from([float("nan"), float("inf"),
                                float("-inf")]))
    @settings(max_examples=40, deadline=None)
    def test_nonfinite_field_rejected(self, document, field, bad):
        document[field] = bad
        with pytest.raises(BadRequestError,
                           match="not a finite number"):
            parse_request(document)

    @given(document=delay_documents,
           bad=st.sampled_from([float("nan"), float("inf")]))
    @settings(max_examples=40, deadline=None)
    def test_nonfinite_nested_field_rejected(self, document, bad):
        document["line"]["l"] = bad
        with pytest.raises(BadRequestError, match="line.l"):
            parse_request(document)

    @given(data=json_values)
    @settings(max_examples=120, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_arbitrary_json_parses_or_bad_request(self, data):
        """No input JSON may escape as anything but BadRequestError."""
        try:
            parse_request(data)
        except BadRequestError as exc:
            assert exc.code == "bad_request"
            assert exc.message

    @given(kind=st.text(min_size=1, max_size=32))
    @settings(max_examples=60, deadline=None)
    def test_unicode_kind_rejected_structurally(self, kind):
        if kind in ("delay", "critical_inductance", "optimize"):
            return
        with pytest.raises(BadRequestError, match="unknown request kind"):
            parse_request({"kind": kind})


# ----------------------------------------------------------------------
# Socket-level framing.
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def server():
    service = ReproService(max_linger=0.001)
    with ServerThread(service, read_timeout=0.3) as handle:
        yield handle


def _raw_exchange(handle, payload: bytes, *, timeout: float = 5.0) -> bytes:
    with socket.create_connection((handle.server.host,
                                   handle.server.port),
                                  timeout=timeout) as sock:
        sock.sendall(payload)
        chunks = []
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
        return b"".join(chunks)


def _status_and_body(raw: bytes):
    head, _sep, body = raw.partition(b"\r\n\r\n")
    status = int(head.split(b" ", 2)[1])
    return status, json.loads(body.splitlines()[0]) if body.strip() \
        else None


class TestFraming:
    def test_truncated_body_gets_400_not_a_hung_connection(self, server):
        # Content-Length promises 100 bytes; only 10 arrive.  The read
        # timeout turns the stall into a structured 400 and closes.
        raw = _raw_exchange(
            server,
            b"POST /v1/evaluate HTTP/1.1\r\n"
            b"Content-Length: 100\r\n\r\n" + b"x" * 10)
        status, body = _status_and_body(raw)
        assert status == 400
        assert body["error"]["code"] == "bad_request"
        assert "incomplete" in body["error"]["message"]

    def test_oversized_body_gets_413(self, server):
        raw = _raw_exchange(
            server,
            b"POST /v1/evaluate HTTP/1.1\r\n"
            b"Content-Length: 99999999\r\n\r\n")
        status, body = _status_and_body(raw)
        assert status == 413

    def test_garbage_request_line_gets_400(self, server):
        raw = _raw_exchange(server, b"NONSENSE\r\n\r\n")
        status, body = _status_and_body(raw)
        assert status == 400
        assert body["error"]["code"] == "bad_request"

    def test_unreadable_content_length_gets_400(self, server):
        raw = _raw_exchange(
            server,
            b"POST /v1/evaluate HTTP/1.1\r\n"
            b"Content-Length: banana\r\n\r\n")
        status, body = _status_and_body(raw)
        assert status == 400

    def test_nan_token_in_body_gets_400(self, server):
        payload = (b'{"kind": "delay", "h": NaN}')
        raw = _raw_exchange(
            server,
            b"POST /v1/evaluate HTTP/1.1\r\n"
            b"Connection: close\r\n"
            + f"Content-Length: {len(payload)}\r\n\r\n".encode("latin-1")
            + payload)
        status, body = _status_and_body(raw)
        assert status == 400
        assert body["error"]["code"] == "bad_request"
        # json.loads accepts the NaN token, so rejection comes from the
        # protocol's finiteness screen, with the offending path named.
        assert "finite" in body["error"]["message"]

    def test_mid_stream_disconnect_leaves_server_healthy(self, server):
        # Open, send half a request, slam the connection shut...
        with socket.create_connection((server.server.host,
                                       server.server.port),
                                      timeout=5.0) as sock:
            sock.sendall(b"POST /v1/evaluate HTTP/1.1\r\n"
                         b"Content-Len")
        # ... and the server still answers the next connection.
        raw = _raw_exchange(server,
                            b"GET /healthz HTTP/1.1\r\n"
                            b"Connection: close\r\n\r\n")
        status, body = _status_and_body(raw)
        assert status == 200
        assert body["status"] == "ok"

    def test_server_never_emits_nan_tokens(self, server):
        """Strict encoding: every body parses with a strict JSON parser."""
        raw = _raw_exchange(server,
                            b"GET /metrics HTTP/1.1\r\n"
                            b"Connection: close\r\n\r\n")
        _head, _sep, body = raw.partition(b"\r\n\r\n")

        def reject(value):
            raise ValueError(f"non-finite token {value!r} on the wire")

        json.loads(body.decode("utf-8"), parse_constant=reject)
